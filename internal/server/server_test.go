package server

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/exp"
	"repro/internal/sim"
)

// stubOutput fabricates a small deterministic result for a spec so
// tests can exercise the job machinery without simulating.
func stubOutput(spec exp.JobSpec) *exp.JobOutput {
	ex := sim.NewExport("stub-" + spec.Experiment)
	st := &sim.Stats{}
	st.Add("sim.stub_runs", 1)
	return &exp.JobOutput{Export: ex, Stats: st}
}

// countingRunner returns instantly-successful stub results and counts
// engine invocations.
type countingRunner struct {
	mu   sync.Mutex
	runs int
}

func (c *countingRunner) run(ctx context.Context, spec exp.JobSpec, pool exp.Pool) (*exp.JobOutput, error) {
	c.mu.Lock()
	c.runs++
	c.mu.Unlock()
	return stubOutput(spec), nil
}

func (c *countingRunner) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.runs
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.Drain(ctx) //nolint:errcheck // best-effort cleanup
		ts.Close()
	})
	return s, ts
}

// sweepSpec builds a valid spec whose cache key varies with rows.
func sweepSpec(rows int) string {
	return fmt.Sprintf(`{"experiment":"sweep","points":2,"rows":%d}`, rows)
}

func postSpec(t *testing.T, ts *httptest.Server, body string, wait bool) (int, JobDoc, http.Header) {
	t.Helper()
	url := ts.URL + "/v1/jobs"
	if wait {
		url += "?wait=true"
	}
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/jobs: %v", err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading response: %v", err)
	}
	var doc JobDoc
	if resp.StatusCode < 300 {
		if err := json.Unmarshal(raw, &doc); err != nil {
			t.Fatalf("decoding job doc from %q: %v", raw, err)
		}
	}
	return resp.StatusCode, doc, resp.Header
}

func getBody(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading %s: %v", url, err)
	}
	return resp.StatusCode, raw
}

func TestSubmitWaitAndCacheHit(t *testing.T) {
	runner := &countingRunner{}
	_, ts := newTestServer(t, Config{Workers: 2, Runner: runner.run})

	status, doc, _ := postSpec(t, ts, sweepSpec(64), true)
	if status != http.StatusOK {
		t.Fatalf("first submit: status = %d, want 200", status)
	}
	if doc.State != StateDone || doc.Cached {
		t.Fatalf("first submit: state = %q cached = %v, want done/false", doc.State, doc.Cached)
	}
	if len(doc.Result) == 0 {
		t.Fatalf("first submit: no result in completed job doc")
	}

	// An identical spec — even spelled with explicit defaults and a
	// different parallel hint — is served out of cache without another
	// engine run.
	status, dup, _ := postSpec(t, ts, `{"experiment":"sweep","points":2,"rows":64,"parallel":4}`, false)
	if status != http.StatusOK {
		t.Fatalf("duplicate submit: status = %d, want 200", status)
	}
	if dup.State != StateDone || !dup.Cached {
		t.Fatalf("duplicate submit: state = %q cached = %v, want done/true", dup.State, dup.Cached)
	}
	if string(dup.Result) != string(doc.Result) {
		t.Fatalf("cached result differs from original")
	}
	if got := runner.count(); got != 1 {
		t.Fatalf("engine ran %d times, want 1 (duplicate must hit the cache)", got)
	}

	// The result endpoint serves the raw export bytes.
	code, raw := getBody(t, ts.URL+"/v1/jobs/"+doc.ID+"/result")
	if code != http.StatusOK {
		t.Fatalf("GET result: status = %d, want 200", code)
	}
	var indented json.RawMessage
	if err := json.Unmarshal(raw, &indented); err != nil {
		t.Fatalf("result is not JSON: %v", err)
	}
	if !strings.Contains(string(raw), `"command": "stub-sweep"`) {
		t.Fatalf("result lacks export command: %s", raw)
	}
}

func TestInvalidSpecRejected(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, Runner: (&countingRunner{}).run})
	for _, body := range []string{
		`{`,
		`{"experiment":"warp"}`,
		`{"experiment":"sweep","bogus":1}`,
		`{"experiment":"sweep","points":1}`,
		`{"experiment":"fork","rows":9}`,
	} {
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatalf("POST: %v", err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("spec %s: status = %d, want 400", body, resp.StatusCode)
			continue
		}
		var e struct {
			Error    string   `json:"error"`
			Problems []string `json:"problems"`
		}
		if err := json.Unmarshal(raw, &e); err != nil || len(e.Problems) == 0 {
			t.Errorf("spec %s: error body %q lacks problems list", body, raw)
		}
	}
}

func TestQueueFullRejects(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 8)
	runner := func(ctx context.Context, spec exp.JobSpec, pool exp.Pool) (*exp.JobOutput, error) {
		started <- struct{}{}
		select {
		case <-release:
			return stubOutput(spec), nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1, Runner: runner})

	// First job occupies the only worker, second fills the queue.
	status, _, _ := postSpec(t, ts, sweepSpec(8), false)
	if status != http.StatusAccepted {
		t.Fatalf("job 1: status = %d, want 202", status)
	}
	select {
	case <-started:
	case <-time.After(5 * time.Second):
		t.Fatalf("worker never started job 1")
	}
	status, _, _ = postSpec(t, ts, sweepSpec(16), false)
	if status != http.StatusAccepted {
		t.Fatalf("job 2: status = %d, want 202", status)
	}

	status, _, hdr := postSpec(t, ts, sweepSpec(24), false)
	if status != http.StatusTooManyRequests {
		t.Fatalf("job 3: status = %d, want 429", status)
	}
	if hdr.Get("Retry-After") != "2" {
		t.Fatalf("Retry-After = %q, want %q", hdr.Get("Retry-After"), "2")
	}

	// A rejected job leaves no record behind.
	s.mu.Lock()
	n := len(s.jobs)
	s.mu.Unlock()
	if n != 2 {
		t.Fatalf("registered jobs = %d, want 2 (429 must roll back)", n)
	}

	close(release)
}

// TestDuplicateInFlightSingleFlight proves concurrent identical
// submissions collapse onto one job: the second submitter gets the
// in-flight job back (202 + X-Overlaysim-Singleflight) rather than a
// rejection, both see the same result, and the engine runs exactly
// once.
func TestDuplicateInFlightSingleFlight(t *testing.T) {
	release := make(chan struct{})
	runner := &countingRunner{}
	blocking := func(ctx context.Context, spec exp.JobSpec, pool exp.Pool) (*exp.JobOutput, error) {
		select {
		case <-release:
			return runner.run(ctx, spec, pool)
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	_, ts := newTestServer(t, Config{Workers: 1, Runner: blocking})

	status, first, _ := postSpec(t, ts, sweepSpec(32), false)
	if status != http.StatusAccepted {
		t.Fatalf("first submit: status = %d, want 202", status)
	}
	// The duplicate joins the leader while it is still in flight —
	// even spelled with a different execution hint (same canonical key).
	status, dup, hdr := postSpec(t, ts, `{"experiment":"sweep","points":2,"rows":32,"parallel":3}`, false)
	if status != http.StatusAccepted {
		t.Fatalf("duplicate submit: status = %d, want 202 (single-flight join)", status)
	}
	if dup.ID != first.ID {
		t.Fatalf("duplicate got job %s, want the in-flight job %s", dup.ID, first.ID)
	}
	if got := hdr.Get("X-Overlaysim-Singleflight"); got != first.ID {
		t.Fatalf("X-Overlaysim-Singleflight = %q, want %q", got, first.ID)
	}

	// A waiting duplicate blocks until the shared job finishes, then
	// carries the result.
	done := make(chan JobDoc, 1)
	go func() {
		_, doc, _ := postSpec(t, ts, sweepSpec(32), true)
		done <- doc
	}()
	time.Sleep(20 * time.Millisecond) // let the waiter subscribe
	close(release)
	select {
	case doc := <-done:
		if doc.State != StateDone || len(doc.Result) == 0 {
			t.Fatalf("joined waiter doc: state %q, %d result bytes", doc.State, len(doc.Result))
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("joined waiter never unblocked")
	}
	if got := runner.count(); got != 1 {
		t.Fatalf("engine ran %d times, want 1 (single-flight)", got)
	}
}

func TestLookupErrors(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 1)
	runner := func(ctx context.Context, spec exp.JobSpec, pool exp.Pool) (*exp.JobOutput, error) {
		started <- struct{}{}
		select {
		case <-release:
			return stubOutput(spec), nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	_, ts := newTestServer(t, Config{Workers: 1, Runner: runner})

	if code, _ := getBody(t, ts.URL+"/v1/jobs/job-999999"); code != http.StatusNotFound {
		t.Fatalf("GET unknown job: status = %d, want 404", code)
	}

	_, doc, _ := postSpec(t, ts, sweepSpec(40), false)
	<-started
	if code, _ := getBody(t, ts.URL+"/v1/jobs/"+doc.ID+"/result"); code != http.StatusConflict {
		t.Fatalf("GET result of running job: status = %d, want 409", code)
	}
	close(release)
}

func TestCancelQueuedAndRunning(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 8)
	runner := &countingRunner{}
	blocking := func(ctx context.Context, spec exp.JobSpec, pool exp.Pool) (*exp.JobOutput, error) {
		started <- struct{}{}
		select {
		case <-release:
			return runner.run(ctx, spec, pool)
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4, Runner: blocking})

	_, run, _ := postSpec(t, ts, sweepSpec(48), false)
	<-started
	_, queued, _ := postSpec(t, ts, sweepSpec(56), false)

	del := func(id string) (int, JobDoc) {
		req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+id, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("DELETE %s: %v", id, err)
		}
		defer resp.Body.Close()
		var doc JobDoc
		json.NewDecoder(resp.Body).Decode(&doc) //nolint:errcheck
		return resp.StatusCode, doc
	}

	// Cancelling a queued job is an immediate terminal transition.
	code, doc := del(queued.ID)
	if code != http.StatusAccepted || doc.State != StateCancelled {
		t.Fatalf("cancel queued: status = %d state = %q, want 202/cancelled", code, doc.State)
	}
	// Cancelling a running job asks the worker to stop.
	code, _ = del(run.ID)
	if code != http.StatusAccepted {
		t.Fatalf("cancel running: status = %d, want 202", code)
	}
	s.mu.Lock()
	j := s.jobs[run.ID]
	s.mu.Unlock()
	select {
	case <-j.done:
	case <-time.After(5 * time.Second):
		t.Fatalf("cancelled running job never reached a terminal state")
	}
	if code, raw := getBody(t, ts.URL+"/v1/jobs/"+run.ID); code != http.StatusOK ||
		!strings.Contains(string(raw), `"state": "cancelled"`) {
		t.Fatalf("cancelled job doc: status %d body %s", code, raw)
	}

	// Cancelling a terminal job conflicts; the skipped queued job never
	// reached the runner.
	if code, _ := del(queued.ID); code != http.StatusConflict {
		t.Fatalf("cancel terminal: status = %d, want 409", code)
	}
	close(release)
	if got := runner.count(); got != 0 {
		t.Fatalf("runner ran %d times, want 0 (both jobs were cancelled)", got)
	}
}

// readSSEEvent reads one `event:`/`data:` pair from the stream.
func readSSEEvent(t *testing.T, r *bufio.Reader) (string, string) {
	t.Helper()
	var event, data string
	for {
		line, err := r.ReadString('\n')
		if err != nil {
			t.Fatalf("reading SSE stream: %v (got event=%q data=%q)", err, event, data)
		}
		line = strings.TrimRight(line, "\n")
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data = strings.TrimPrefix(line, "data: ")
		case line == "" && event != "":
			return event, data
		}
	}
}

func TestEventsStreamProgressAndTerminal(t *testing.T) {
	stage := make(chan struct{})
	runner := func(ctx context.Context, spec exp.JobSpec, pool exp.Pool) (*exp.JobOutput, error) {
		pool.OnProgress(1, 3, 0)
		select {
		case <-stage:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		pool.OnProgress(3, 3, 1)
		return stubOutput(spec), nil
	}
	_, ts := newTestServer(t, Config{Workers: 1, Runner: runner})

	_, doc, _ := postSpec(t, ts, sweepSpec(72), false)
	resp, err := http.Get(ts.URL + "/v1/jobs/" + doc.ID + "/events")
	if err != nil {
		t.Fatalf("GET events: %v", err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("events Content-Type = %q", ct)
	}
	br := bufio.NewReader(resp.Body)

	event, data := readSSEEvent(t, br)
	if event != "progress" {
		t.Fatalf("first event = %q, want progress", event)
	}
	var p ProgressEvent
	if err := json.Unmarshal([]byte(data), &p); err != nil || p != (ProgressEvent{Done: 1, Total: 3}) {
		t.Fatalf("first progress = %+v (%v), want {1 3 0}", p, err)
	}

	close(stage)
	sawFinal := false
	for !sawFinal {
		event, data = readSSEEvent(t, br)
		switch event {
		case "progress":
			// the coalesced 3/3 update; fine either way
		case StateDone:
			var final JobDoc
			if err := json.Unmarshal([]byte(data), &final); err != nil {
				t.Fatalf("terminal event data: %v", err)
			}
			if final.State != StateDone || len(final.Result) == 0 {
				t.Fatalf("terminal doc = state %q, result %d bytes", final.State, len(final.Result))
			}
			if final.Progress == nil || final.Progress.Failed != 1 {
				t.Fatalf("terminal doc progress = %+v, want failed=1", final.Progress)
			}
			sawFinal = true
		default:
			t.Fatalf("unexpected event %q", event)
		}
	}
}

func TestDrainClean(t *testing.T) {
	runner := &countingRunner{}
	s := New(Config{Workers: 1, Runner: runner.run})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	status, _, _ := postSpec(t, ts, sweepSpec(80), true)
	if status != http.StatusOK {
		t.Fatalf("submit: status = %d, want 200", status)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("clean drain returned %v", err)
	}
	// Liveness stays 200 through the drain; readiness flips to 503.
	if code, body := getBody(t, ts.URL+"/healthz"); code != http.StatusOK ||
		!strings.Contains(string(body), `"draining": true`) {
		t.Fatalf("healthz while drained: status = %d body %s, want 200 + draining", code, body)
	}
	if code, _ := getBody(t, ts.URL+"/readyz"); code != http.StatusServiceUnavailable {
		t.Fatalf("readyz while drained: status = %d, want 503", code)
	}
	if status, _, _ := postSpec(t, ts, sweepSpec(88), false); status != http.StatusServiceUnavailable {
		t.Fatalf("submit while drained: status = %d, want 503", status)
	}
}

func TestDrainForcedCancelsStragglers(t *testing.T) {
	started := make(chan struct{}, 1)
	runner := func(ctx context.Context, spec exp.JobSpec, pool exp.Pool) (*exp.JobOutput, error) {
		started <- struct{}{}
		<-ctx.Done() // refuses to finish until cancelled
		return nil, ctx.Err()
	}
	s := New(Config{Workers: 1, QueueDepth: 2, Runner: runner})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	_, run, _ := postSpec(t, ts, sweepSpec(96), false)
	<-started
	_, queued, _ := postSpec(t, ts, sweepSpec(104), false)

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	err := s.Drain(ctx)
	if err == nil {
		t.Fatalf("forced drain returned nil, want grace-period error")
	}
	if !strings.Contains(err.Error(), "cancelled 2 in-flight jobs") {
		t.Fatalf("forced drain error = %v", err)
	}
	for _, id := range []string{run.ID, queued.ID} {
		code, raw := getBody(t, ts.URL+"/v1/jobs/"+id)
		if code != http.StatusOK || !strings.Contains(string(raw), `"state": "cancelled"`) {
			t.Fatalf("job %s after forced drain: status %d body %s", id, code, raw)
		}
	}
}

func TestCacheEvictionBound(t *testing.T) {
	runner := &countingRunner{}
	s, ts := newTestServer(t, Config{Workers: 1, CacheSize: 1, Runner: runner.run})

	postSpec(t, ts, sweepSpec(112), true) // cached
	postSpec(t, ts, sweepSpec(120), true) // evicts 112
	s.mu.Lock()
	n := s.cache.len()
	s.mu.Unlock()
	if n != 1 {
		t.Fatalf("cache holds %d entries, want 1", n)
	}

	status, doc, _ := postSpec(t, ts, sweepSpec(112), true)
	if status != http.StatusOK || doc.Cached {
		t.Fatalf("evicted spec: status = %d cached = %v, want 200/false (re-run)", status, doc.Cached)
	}
	if got := runner.count(); got != 3 {
		t.Fatalf("engine ran %d times, want 3 (eviction forces a re-run)", got)
	}
}

func TestMetricsPrometheusFormat(t *testing.T) {
	runner := &countingRunner{}
	_, ts := newTestServer(t, Config{Workers: 1, Runner: runner.run})

	postSpec(t, ts, sweepSpec(128), true)
	postSpec(t, ts, sweepSpec(128), false) // cache hit

	code, raw := getBody(t, ts.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("GET /metrics: status = %d", code)
	}
	samples, types, err := sim.ParsePrometheus(strings.NewReader(string(raw)))
	if err != nil {
		t.Fatalf("metrics do not parse as Prometheus text format: %v\n%s", err, raw)
	}
	byName := map[string]float64{}
	for _, s := range samples {
		if s.Le == "" {
			byName[s.Name] = s.Value
		}
	}
	for name, want := range map[string]float64{
		"overlaysim_server_engine_runs":    1,
		"overlaysim_server_cache_hits":     1,
		"overlaysim_server_jobs_completed": 1,
		"overlaysim_sim_stub_runs":         1, // merged from the job's own registry
		"overlaysim_server_queue_depth":    0,
	} {
		if got, ok := byName[name]; !ok || got != want {
			t.Errorf("metric %s = %v (present %v), want %v", name, got, ok, want)
		}
	}
	if types["overlaysim_server_queue_depth"] != "gauge" {
		t.Errorf("queue depth type = %q, want gauge", types["overlaysim_server_queue_depth"])
	}
	if types["overlaysim_server_job_wall_ms"] != "histogram" {
		t.Errorf("job wall histogram type = %q, want histogram", types["overlaysim_server_job_wall_ms"])
	}
	if _, ok := byName["overlaysim_server_job_wall_ms_count"]; !ok {
		t.Errorf("histogram _count series missing from /metrics")
	}
}

// mapStore is an in-memory ResultStore for tests; failGet injects a
// read error (a "corrupt" entry) for one key.
type mapStore struct {
	mu      sync.Mutex
	entries map[string][]byte
	failGet string
	gets    int
	puts    int
}

func newMapStore() *mapStore { return &mapStore{entries: make(map[string][]byte)} }

func (m *mapStore) Get(key string) ([]byte, bool, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.gets++
	if key == m.failGet {
		return nil, false, fmt.Errorf("stub corruption for %s", key)
	}
	b, ok := m.entries[key]
	return b, ok, nil
}

func (m *mapStore) Put(key string, result []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.puts++
	m.entries[key] = append([]byte(nil), result...)
	return nil
}

// TestPersistentStoreSurvivesRestart proves the store tier: a second
// server sharing the first one's store answers the same spec from the
// store — X-Overlaysim-Cache: hit-store, cache_source "store", byte-
// identical result — without running its engine.
func TestPersistentStoreSurvivesRestart(t *testing.T) {
	store := newMapStore()
	runner1 := &countingRunner{}
	_, ts1 := newTestServer(t, Config{Workers: 1, Runner: runner1.run, Store: store})

	status, doc, hdr := postSpec(t, ts1, sweepSpec(64), true)
	if status != http.StatusOK || doc.State != StateDone {
		t.Fatalf("first submit: status %d state %q", status, doc.State)
	}
	if got := hdr.Get("X-Overlaysim-Cache"); got != "miss" {
		t.Fatalf("first submit X-Overlaysim-Cache = %q, want miss", got)
	}
	if store.puts != 1 {
		t.Fatalf("store puts = %d, want 1 (write-through on completion)", store.puts)
	}

	// A "restarted" process: fresh server, empty LRU, same store.
	runner2 := &countingRunner{}
	_, ts2 := newTestServer(t, Config{Workers: 1, Runner: runner2.run, Store: store})
	status, doc2, hdr2 := postSpec(t, ts2, sweepSpec(64), false)
	if status != http.StatusOK || !doc2.Cached || doc2.CacheSource != CacheStore {
		t.Fatalf("store hit: status %d cached %v source %q, want 200/true/store",
			status, doc2.Cached, doc2.CacheSource)
	}
	if got := hdr2.Get("X-Overlaysim-Cache"); got != "hit-store" {
		t.Fatalf("store hit X-Overlaysim-Cache = %q, want hit-store", got)
	}
	if string(doc2.Result) != string(doc.Result) {
		t.Fatalf("store-served result differs from the original")
	}
	if runner2.count() != 0 {
		t.Fatalf("second server ran the engine %d times, want 0", runner2.count())
	}

	// The store hit was promoted into the LRU: a third submission hits
	// memory, not the store.
	gets := store.gets
	status, _, hdr3 := postSpec(t, ts2, sweepSpec(64), false)
	if status != http.StatusOK || hdr3.Get("X-Overlaysim-Cache") != "hit" {
		t.Fatalf("post-promotion submit: status %d cache %q, want 200/hit",
			status, hdr3.Get("X-Overlaysim-Cache"))
	}
	if store.gets != gets {
		t.Fatalf("memory hit consulted the store (%d extra reads)", store.gets-gets)
	}
}

// TestStoreReadErrorFallsBackToEngine proves a corrupt store entry is
// a miss, not an outage: the job re-runs and the write-through repairs
// the entry.
func TestStoreReadErrorFallsBackToEngine(t *testing.T) {
	store := newMapStore()
	runner := &countingRunner{}
	s, ts := newTestServer(t, Config{Workers: 1, Runner: runner.run, Store: store})

	var key string
	{
		spec, err := exp.ParseJobSpec(strings.NewReader(sweepSpec(72)))
		if err != nil {
			t.Fatal(err)
		}
		key = spec.Key()
	}
	store.entries[key] = []byte("garbage")
	store.failGet = key

	status, doc, hdr := postSpec(t, ts, sweepSpec(72), true)
	if status != http.StatusOK || doc.State != StateDone || doc.Cached {
		t.Fatalf("submit over corrupt entry: status %d state %q cached %v, want 200/done/false",
			status, doc.State, doc.Cached)
	}
	if got := hdr.Get("X-Overlaysim-Cache"); got != "miss" {
		t.Fatalf("X-Overlaysim-Cache = %q, want miss (corrupt entry is a miss)", got)
	}
	if runner.count() != 1 {
		t.Fatalf("engine ran %d times, want 1", runner.count())
	}
	// The raw result endpoint serves the exact stored bytes (the doc's
	// embedded Result is re-compacted by the JSON encoder, so compare
	// against the byte-preserving endpoint).
	if code, raw := getBody(t, ts.URL+"/v1/jobs/"+doc.ID+"/result"); code != http.StatusOK ||
		string(store.entries[key]) != string(raw) {
		t.Fatalf("write-through did not repair the corrupt entry (GET result = %d)", code)
	}
	s.statsMu.Lock()
	errs := s.stats.Get("server.store_errors")
	s.statsMu.Unlock()
	if errs != 1 {
		t.Fatalf("server.store_errors = %d, want 1", errs)
	}
}

// TestStoreAndCacheAgreeOnDigest is the digest-agreement regression:
// a spec canonicalized with execution-only fields (parallel, cold,
// shared) set must produce the same digest for the LRU cache, the
// persistent store, and exp.JobSpec.Key — so every tier answers a
// resubmission spelled with different execution hints.
func TestStoreAndCacheAgreeOnDigest(t *testing.T) {
	store := newMapStore()
	runner := &countingRunner{}
	_, ts := newTestServer(t, Config{Workers: 1, Runner: runner.run, Store: store})

	base := `{"experiment":"omsstress","tenants":2,"ops":100,"segments":8}`
	variant := `{"experiment":"omsstress","tenants":2,"ops":100,"segments":8,"parallel":4,"shared":true}`

	status, doc, _ := postSpec(t, ts, base, true)
	if status != http.StatusOK || doc.State != StateDone {
		t.Fatalf("base submit: status %d state %q", status, doc.State)
	}
	// The stored entry is keyed by the canonical digest exp.JobSpec.Key.
	baseSpec, err := exp.ParseJobSpec(strings.NewReader(base))
	if err != nil {
		t.Fatal(err)
	}
	varSpec, err := exp.ParseJobSpec(strings.NewReader(variant))
	if err != nil {
		t.Fatal(err)
	}
	if baseSpec.Key() != varSpec.Key() {
		t.Fatalf("execution hints changed the digest: %s vs %s", baseSpec.Key(), varSpec.Key())
	}
	if _, ok := store.entries[doc.Key]; !ok {
		t.Fatalf("store holds keys %v, not the job's digest %s", len(store.entries), doc.Key)
	}
	if doc.Key != baseSpec.Key() {
		t.Fatalf("job doc key %s != spec digest %s", doc.Key, baseSpec.Key())
	}

	// The exec-hint variant hits the LRU...
	status, v1, hdr := postSpec(t, ts, variant, false)
	if status != http.StatusOK || !v1.Cached || hdr.Get("X-Overlaysim-Cache") != "hit" {
		t.Fatalf("variant vs LRU: status %d cached %v cache %q, want 200/true/hit",
			status, v1.Cached, hdr.Get("X-Overlaysim-Cache"))
	}
	// ...and, on a fresh server sharing only the store, the store.
	runner2 := &countingRunner{}
	_, ts2 := newTestServer(t, Config{Workers: 1, Runner: runner2.run, Store: store})
	status, v2, hdr2 := postSpec(t, ts2, variant, false)
	if status != http.StatusOK || !v2.Cached || hdr2.Get("X-Overlaysim-Cache") != "hit-store" {
		t.Fatalf("variant vs store: status %d cached %v cache %q, want 200/true/hit-store",
			status, v2.Cached, hdr2.Get("X-Overlaysim-Cache"))
	}
	if runner2.count() != 0 {
		t.Fatalf("fresh server re-ran the engine for a stored digest")
	}
}

// TestSnapshotReuseAcrossJobs runs two real sweep jobs that share a
// configuration family (same rows, different points) and checks that
// the second job's family warm-up came out of the snapshot cache, with
// the reuse telemetry visible on /metrics.
func TestSnapshotReuseAcrossJobs(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	s, ts := newTestServer(t, Config{Workers: 1})

	if code, _, _ := postSpec(t, ts, `{"experiment":"sweep","points":2,"rows":32}`, true); code != http.StatusOK {
		t.Fatalf("job 1: status = %d, want 200", code)
	}
	if code, _, _ := postSpec(t, ts, `{"experiment":"sweep","points":3,"rows":32}`, true); code != http.StatusOK {
		t.Fatalf("job 2: status = %d, want 200", code)
	}
	if hits, misses := s.snapshots.Hits(), s.snapshots.Misses(); hits != 1 || misses != 1 {
		t.Errorf("snapshot cache hits/misses = %d/%d, want 1/1", hits, misses)
	}

	code, raw := getBody(t, ts.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("GET /metrics: status = %d", code)
	}
	samples, _, err := sim.ParsePrometheus(strings.NewReader(string(raw)))
	if err != nil {
		t.Fatalf("metrics do not parse: %v\n%s", err, raw)
	}
	byName := map[string]float64{}
	for _, sm := range samples {
		byName[sm.Name] = sm.Value
	}
	if byName["overlaysim_server_snapshot_cache_hits"] != 1 {
		t.Errorf("snapshot cache hits gauge = %v, want 1", byName["overlaysim_server_snapshot_cache_hits"])
	}
	// Each job forks once per point plus one dense-baseline fork of the
	// shared family.
	if got := byName["overlaysim_"+sim.PromName(exp.SnapForksCounter)]; got < 2 {
		t.Errorf("%s = %v, want >= 2", exp.SnapForksCounter, got)
	}
	if got := byName["overlaysim_"+sim.PromName(exp.SnapWarmupsCounter)]; got < 1 {
		t.Errorf("%s = %v, want >= 1", exp.SnapWarmupsCounter, got)
	}
}
