// Package server exposes the experiment harness over HTTP: the job
// layer behind the `overlaysim serve` subcommand. It turns the
// repository's deterministic simulations into a cacheable network
// service, the way the paper's framework separates mechanism (the
// overlay hardware of §3–4) from the workloads driving it — here the
// simulator is the mechanism and HTTP clients are the workloads.
//
// The pipeline is: clients POST a canonical JSON job spec
// (exp.JobSpec, validated against the same flag tables the CLI uses)
// to /v1/jobs; accepted jobs enter a bounded queue (backpressure is a
// 429 with Retry-After, never an unbounded buffer); a fixed pool of
// workers runs each job through internal/harness (which contributes
// panic recovery and the per-job timeout) and the experiment's own
// harness fan-out underneath; progress streams to subscribers as
// Server-Sent Events; results land in an LRU cache keyed by the
// spec's canonical hash. /metrics renders the internal/sim telemetry
// registry — server counters plus the simulator histograms merged in
// from completed jobs — in Prometheus text format.
//
// Invariants the package maintains:
//
//   - Determinism: a job's result depends only on its canonical spec.
//     The simulator is deterministic and bit-identical at any harness
//     width, so serving a cached result is indistinguishable from
//     re-running the job — the integration tests in cmd/overlaysim
//     prove served results byte-identical to CLI -json output.
//   - Bounded memory: at most QueueDepth jobs wait, at most Workers
//     run, at most CacheSize results are retained.
//   - Clean shutdown: Drain stops intake (503), lets in-flight jobs
//     finish inside the grace period, and cancels stragglers after it.
//   - Job records are immutable once terminal; every terminal state
//     closes the job's done channel exactly once and delivers a final
//     SSE event to every subscriber.
//
// See docs/API.md for the wire protocol.
package server
