package server

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/exp"
	"repro/internal/harness"
	"repro/internal/sim"
)

// Runner executes one validated job spec. The default is
// exp.JobSpec.Run; tests substitute stubs to script slow, failing or
// progress-reporting jobs without simulating.
type Runner func(ctx context.Context, spec exp.JobSpec, pool exp.Pool) (*exp.JobOutput, error)

// Config sizes the service. The zero value is usable: every field has
// a production default.
type Config struct {
	// Workers is the number of jobs simulated concurrently
	// (0 = GOMAXPROCS). Each job may additionally fan out its own
	// simulations per its spec's parallel field.
	Workers int

	// QueueDepth bounds how many accepted jobs may wait behind the
	// running ones (0 = 16). A full queue rejects submissions with
	// 429 + Retry-After instead of buffering without bound.
	QueueDepth int

	// JobTimeout caps one job's wall clock (0 = unbounded). Enforced
	// by the harness's per-job timeout; an expired job fails with
	// context.DeadlineExceeded.
	JobTimeout time.Duration

	// CacheSize bounds the result cache in entries (0 = 128,
	// negative disables caching).
	CacheSize int

	// RetryAfter is the backpressure hint returned with 429
	// (0 = 2s).
	RetryAfter time.Duration

	// Runner overrides job execution (nil = exp.JobSpec.Run).
	Runner Runner
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 16
	}
	if c.CacheSize == 0 {
		c.CacheSize = 128
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = 2 * time.Second
	}
	if c.Runner == nil {
		c.Runner = func(ctx context.Context, spec exp.JobSpec, pool exp.Pool) (*exp.JobOutput, error) {
			return spec.Run(ctx, pool)
		}
	}
	return c
}

// Server runs experiment jobs submitted over HTTP. Construct with New
// (workers start immediately), serve its Handler, and stop with Drain.
type Server struct {
	cfg Config

	baseCtx    context.Context
	baseCancel context.CancelFunc

	// statsMu guards the telemetry registry; sim.Stats itself is not
	// concurrency-safe.
	statsMu sync.Mutex
	stats   *sim.Stats

	mu       sync.Mutex
	jobs     map[string]*job
	order    []*job          // submission order, for listing
	inflight map[string]*job // canonical key → queued/running job
	cache    *resultCache
	queue    chan *job
	draining bool
	seq      int

	wg sync.WaitGroup
}

// New builds the server and starts its worker pool.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:        cfg,
		baseCtx:    ctx,
		baseCancel: cancel,
		stats:      &sim.Stats{},
		jobs:       make(map[string]*job),
		inflight:   make(map[string]*job),
		cache:      newResultCache(cfg.CacheSize),
		queue:      make(chan *job, cfg.QueueDepth),
	}
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			for j := range s.queue {
				s.runJob(j)
			}
		}()
	}
	return s
}

// addStat bumps a server counter under the registry lock.
func (s *Server) addStat(name string, n uint64) {
	s.statsMu.Lock()
	s.stats.Add(name, n)
	s.statsMu.Unlock()
}

// observe records one histogram sample under the registry lock.
func (s *Server) observe(name string, v uint64) {
	s.statsMu.Lock()
	s.stats.Histogram(name).Observe(v)
	s.statsMu.Unlock()
}

// submit registers a new job or replies out of cache. It returns the
// job (possibly an already-terminal cache-backed record), a suggested
// HTTP status, and an error for rejections (full queue, draining,
// duplicate in flight).
func (s *Server) submit(spec exp.JobSpec) (*job, int, error) {
	key := spec.Key()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.addStat("server.jobs_submitted", 1)

	if s.draining {
		return nil, 503, errors.New("server is draining; not accepting jobs")
	}
	if result, ok := s.cache.get(key); ok {
		s.addStat("server.cache_hits", 1)
		j := s.newJobLocked(spec, key)
		now := time.Now()
		j.state = StateDone
		j.cached = true
		j.started, j.finished = now, now
		j.result = result
		close(j.done)
		return j, 200, nil
	}
	s.addStat("server.cache_misses", 1)
	if dup, ok := s.inflight[key]; ok {
		return dup, 409, fmt.Errorf("an identical job is already in flight as %s", dup.id)
	}

	j := s.newJobLocked(spec, key)
	select {
	case s.queue <- j:
	default:
		// Roll the registration back: the job never existed.
		delete(s.jobs, j.id)
		s.order = s.order[:len(s.order)-1]
		s.seq--
		s.addStat("server.queue_rejections", 1)
		return nil, 429, fmt.Errorf("job queue is full (%d waiting)", cap(s.queue))
	}
	s.inflight[key] = j
	return j, 202, nil
}

// newJobLocked allocates and registers a queued job record.
func (s *Server) newJobLocked(spec exp.JobSpec, key string) *job {
	s.seq++
	j := &job{
		id:        jobID(s.seq),
		spec:      spec,
		key:       key,
		state:     StateQueued,
		submitted: time.Now(),
		subs:      make(map[chan struct{}]struct{}),
		done:      make(chan struct{}),
	}
	s.jobs[j.id] = j
	s.order = append(s.order, j)
	return j
}

// runJob executes one dequeued job through the harness: a single
// harness job wraps the runner, contributing panic→error conversion
// and the per-job timeout, while the experiment underneath fans its
// own simulations across the spec's parallelism.
func (s *Server) runJob(j *job) {
	s.mu.Lock()
	if j.state != StateQueued { // cancelled while waiting
		s.mu.Unlock()
		return
	}
	j.state = StateRunning
	j.started = time.Now()
	ctx, cancel := context.WithCancel(s.baseCtx)
	j.cancel = cancel
	j.notifySubs()
	queueWait := j.started.Sub(j.submitted)
	s.mu.Unlock()
	defer cancel()

	s.addStat("server.engine_runs", 1)
	s.observe("server.queue_wait_ms", uint64(queueWait.Milliseconds()))

	pool := exp.Pool{
		Parallel: 1, // overridden by the spec's parallel field when set
		OnProgress: func(done, total, failed int) {
			s.mu.Lock()
			j.progress = ProgressEvent{Done: done, Total: total, Failed: failed}
			j.hasProg = true
			j.notifySubs()
			s.mu.Unlock()
		},
	}
	results := harness.Run(ctx, harness.Options{Parallel: 1, Timeout: s.cfg.JobTimeout},
		[]harness.Job[*exp.JobOutput]{func(ctx context.Context) (*exp.JobOutput, error) {
			return s.cfg.Runner(ctx, j.spec, pool)
		}})
	out, err := results[0].Value, results[0].Err

	var rendered []byte
	if err == nil && out != nil && out.Export != nil {
		var buf bytes.Buffer
		if werr := out.Export.WriteJSON(&buf); werr != nil {
			err = fmt.Errorf("rendering result: %w", werr)
		} else {
			rendered = buf.Bytes()
		}
	} else if err == nil {
		err = errors.New("runner returned no result")
	}

	s.mu.Lock()
	delete(s.inflight, j.key)
	j.cancel = nil
	j.finished = time.Now()
	switch {
	case err == nil:
		j.state = StateDone
		j.result = rendered
		s.cache.put(j.key, rendered)
	case errors.Is(err, context.Canceled):
		j.state = StateCancelled
		j.errMsg = err.Error()
	default:
		j.state = StateFailed
		j.errMsg = err.Error()
	}
	state := j.state
	close(j.done)
	j.notifySubs()
	s.mu.Unlock()

	s.observe("server.job_wall_ms", uint64(j.finished.Sub(j.started).Milliseconds()))
	switch state {
	case StateDone:
		s.addStat("server.jobs_completed", 1)
	case StateCancelled:
		s.addStat("server.jobs_cancelled", 1)
	default:
		s.addStat("server.jobs_failed", 1)
	}
	if err == nil && out.Stats != nil {
		s.statsMu.Lock()
		s.stats.Merge(out.Stats)
		s.statsMu.Unlock()
	}
}

// cancelJob cancels a queued or running job. It returns the job and
// nil on success, or an error describing why nothing was cancelled.
func (s *Server) cancelJob(id string) (*job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, errNoSuchJob
	}
	switch j.state {
	case StateQueued:
		// The worker that eventually dequeues it will skip it.
		j.state = StateCancelled
		j.errMsg = context.Canceled.Error()
		j.finished = time.Now()
		delete(s.inflight, j.key)
		close(j.done)
		j.notifySubs()
		s.addStat("server.jobs_cancelled", 1)
		return j, nil
	case StateRunning:
		j.cancel() // the worker performs the terminal transition
		return j, nil
	default:
		return j, fmt.Errorf("job %s is already %s", id, j.state)
	}
}

var errNoSuchJob = errors.New("no such job")

// Drain stops intake and shuts the pool down: new submissions get 503,
// queued and running jobs are given until ctx expires to finish, and
// anything still running afterwards is cancelled. Drain returns nil on
// a clean drain and an error when the grace period expired (in-flight
// simulations do not observe cancellation mid-engine-run, so a forced
// drain may abandon worker goroutines to process exit).
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		close(s.queue)
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		s.baseCancel()
		return nil
	case <-ctx.Done():
	}

	// Grace expired: cancel everything still alive and give workers a
	// moment to notice before abandoning them.
	s.mu.Lock()
	forced := 0
	for _, j := range s.order {
		switch j.state {
		case StateRunning:
			j.cancel()
			forced++
		case StateQueued:
			j.state = StateCancelled
			j.errMsg = context.Canceled.Error()
			j.finished = time.Now()
			delete(s.inflight, j.key)
			close(j.done)
			j.notifySubs()
			forced++
		}
	}
	s.mu.Unlock()
	s.baseCancel()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
	}
	return fmt.Errorf("drain grace period expired; cancelled %d in-flight jobs", forced)
}

// Draining reports whether Drain has begun.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}
