package server

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"log/slog"
	"runtime"
	"sync"
	"time"

	"repro/internal/exp"
	"repro/internal/harness"
	"repro/internal/obs"
	"repro/internal/sim"
)

// Runner executes one validated job spec. The default is
// exp.JobSpec.Run; tests substitute stubs to script slow, failing or
// progress-reporting jobs without simulating.
type Runner func(ctx context.Context, spec exp.JobSpec, pool exp.Pool) (*exp.JobOutput, error)

// Config sizes the service. The zero value is usable: every field has
// a production default.
type Config struct {
	// Workers is the number of jobs simulated concurrently
	// (0 = GOMAXPROCS). Each job may additionally fan out its own
	// simulations per its spec's parallel field.
	Workers int

	// QueueDepth bounds how many accepted jobs may wait behind the
	// running ones (0 = 16). A full queue rejects submissions with
	// 429 + Retry-After instead of buffering without bound.
	QueueDepth int

	// JobTimeout caps one job's wall clock (0 = unbounded). Enforced
	// by the harness's per-job timeout; an expired job fails with
	// context.DeadlineExceeded.
	JobTimeout time.Duration

	// CacheSize bounds the result cache in entries (0 = 128,
	// negative disables caching).
	CacheSize int

	// SnapshotCacheSize bounds the warm-state snapshot cache in family
	// entries (0 = 32, negative disables snapshot reuse). Cached family
	// snapshots let jobs that share a configuration family skip warm-up
	// simulation; results are bit-identical either way.
	SnapshotCacheSize int

	// RetryAfter is the backpressure hint returned with 429
	// (0 = 2s).
	RetryAfter time.Duration

	// Runner overrides job execution (nil = exp.JobSpec.Run).
	Runner Runner

	// Store is the persistent result tier under the LRU cache (nil =
	// none). Completed results are written through to it, and an LRU
	// miss consults it before running the engine, so cache hits
	// survive restarts and are deduplicated across every process
	// sharing the store.
	Store ResultStore

	// Logger receives structured log records for submissions, job
	// lifecycle transitions and HTTP requests (nil = records are
	// discarded).
	Logger *slog.Logger

	// TraceCap bounds each job's span buffer in spans (0 = 512).
	TraceCap int

	// DisableTracing turns per-job span recording off; jobs then carry
	// no trace and GET /v1/jobs/{id}/trace answers 404.
	DisableTracing bool
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 16
	}
	if c.CacheSize == 0 {
		c.CacheSize = 128
	}
	if c.SnapshotCacheSize == 0 {
		c.SnapshotCacheSize = 32
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = 2 * time.Second
	}
	if c.Runner == nil {
		c.Runner = func(ctx context.Context, spec exp.JobSpec, pool exp.Pool) (*exp.JobOutput, error) {
			return spec.Run(ctx, pool)
		}
	}
	if c.Logger == nil {
		c.Logger = obs.Nop()
	}
	if c.TraceCap <= 0 {
		c.TraceCap = 512
	}
	return c
}

// Server runs experiment jobs submitted over HTTP. Construct with New
// (workers start immediately), serve its Handler, and stop with Drain.
type Server struct {
	cfg Config

	baseCtx    context.Context
	baseCancel context.CancelFunc

	// statsMu guards the telemetry registry; sim.Stats itself is not
	// concurrency-safe. statusCounts and backendCounts ride under the
	// same lock: the registry has no labelled counters, so HTTP response
	// statuses and per-backend job tallies are kept aside and rendered
	// as {code="NNN"}- and {backend="name"}-labelled series.
	statsMu       sync.Mutex
	stats         *sim.Stats
	statusCounts  map[int]uint64
	backendCounts map[string]uint64

	mu       sync.Mutex
	jobs     map[string]*job
	order    []*job          // submission order, for listing
	inflight map[string]*job // canonical key → queued/running job
	cache    *resultCache
	// snapshots caches warm family state across jobs: two sweep jobs
	// over the same matrix dimension share one warm-up. Entries are
	// immutable, so concurrent jobs fork the same family safely.
	snapshots *exp.SnapshotCache
	queue     chan *job
	draining  bool
	seq       int

	wg sync.WaitGroup
}

// New builds the server and starts its worker pool.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:           cfg,
		baseCtx:       ctx,
		baseCancel:    cancel,
		stats:         &sim.Stats{},
		statusCounts:  make(map[int]uint64),
		backendCounts: make(map[string]uint64),
		jobs:          make(map[string]*job),
		inflight:      make(map[string]*job),
		cache:         newResultCache(cfg.CacheSize),
		queue:         make(chan *job, cfg.QueueDepth),
	}
	if cfg.SnapshotCacheSize > 0 {
		s.snapshots = exp.NewSnapshotCache(cfg.SnapshotCacheSize)
	}
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			for j := range s.queue {
				s.runJob(j)
			}
		}()
	}
	return s
}

// addStat bumps a server counter under the registry lock.
func (s *Server) addStat(name string, n uint64) {
	s.statsMu.Lock()
	s.stats.Add(name, n)
	s.statsMu.Unlock()
}

// observe records one histogram sample under the registry lock.
func (s *Server) observe(name string, v uint64) {
	s.statsMu.Lock()
	s.stats.Histogram(name).Observe(v)
	s.statsMu.Unlock()
}

// submit registers a new job or replies out of cache. requestID tags
// the job with the submitting request; remote, when valid, is the
// client's traceparent, adopted as the job trace's ID and root parent.
// It returns the job (possibly an already-terminal cache-backed record,
// or — joined=true — the in-flight job an identical concurrent
// submission collapsed onto), a suggested HTTP status, and an error for
// rejections (full queue, draining).
func (s *Server) submit(spec exp.JobSpec, requestID string, remote obs.SpanContext) (j *job, status int, joined bool, err error) {
	key := spec.Key()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.addStat("server.jobs_submitted", 1)
	s.statsMu.Lock()
	s.backendCounts[specBackendLabel(spec)]++
	s.statsMu.Unlock()

	if s.draining {
		return nil, 503, false, errors.New("server is draining; not accepting jobs")
	}
	if result, ok := s.cache.get(key); ok {
		s.addStat("server.cache_hits", 1)
		return s.cachedJobLocked(spec, key, requestID, remote, result, CacheMemory), 200, false, nil
	}
	s.addStat("server.cache_misses", 1)
	if dup, ok := s.inflight[key]; ok {
		// Single-flight: a concurrent identical submission joins the
		// job already in flight instead of being rejected — the engine
		// runs once and every submitter polls or waits on the same
		// record.
		s.addStat("server.singleflight_hits", 1)
		s.cfg.Logger.Info("job joined in-flight duplicate",
			"job_id", dup.id, "trace_id", dup.traceID(), "request_id", requestID,
			"experiment", spec.Experiment)
		return dup, 202, true, nil
	}
	if s.cfg.Store != nil {
		// The persistent tier sits under the LRU: a hit promotes the
		// entry into memory and answers like any cache hit; a store
		// error (corrupt entry, unreadable mount) is a miss — the job
		// re-runs and the write-through repairs the entry. The read is
		// a small local file; holding the registration lock across it
		// keeps the miss→inflight transition atomic.
		switch result, ok, serr := s.cfg.Store.Get(key); {
		case serr != nil:
			s.addStat("server.store_errors", 1)
			s.cfg.Logger.Warn("result store read failed",
				"key", key, "request_id", requestID, "err", serr.Error())
		case ok:
			s.addStat("server.store_hits", 1)
			s.cache.put(key, result)
			return s.cachedJobLocked(spec, key, requestID, remote, result, CacheStore), 200, false, nil
		}
	}

	j = s.newJobLocked(spec, key, requestID)
	select {
	case s.queue <- j:
	default:
		// Roll the registration back: the job never existed.
		delete(s.jobs, j.id)
		s.order = s.order[:len(s.order)-1]
		s.seq--
		s.addStat("server.queue_rejections", 1)
		return nil, 429, false, fmt.Errorf("job queue is full (%d waiting)", cap(s.queue))
	}
	s.startTrace(j, remote)
	j.span.SetAttr("cache", "miss")
	j.queueSpan = j.tracer.StartSpan(j.span.Context(), "queue.wait")
	s.inflight[key] = j
	s.cfg.Logger.Info("job accepted",
		"job_id", j.id, "trace_id", j.traceID(), "request_id", requestID,
		"experiment", spec.Experiment, "queue_depth", len(s.queue))
	return j, 202, false, nil
}

// cachedJobLocked registers an already-terminal job backed by a cached
// result. src names the tier that answered (CacheMemory or CacheStore).
// Caller holds the Server mutex.
func (s *Server) cachedJobLocked(spec exp.JobSpec, key, requestID string, remote obs.SpanContext, result []byte, src string) *job {
	j := s.newJobLocked(spec, key, requestID)
	s.startTrace(j, remote)
	if src == CacheMemory {
		j.span.SetAttr("cache", "hit")
	} else {
		j.span.SetAttr("cache", "hit-"+src)
	}
	now := time.Now()
	j.state = StateDone
	j.cached = true
	j.cacheSrc = src
	j.started, j.finished = now, now
	j.result = result
	j.endTrace()
	close(j.done)
	s.cfg.Logger.Info("job served from cache",
		"job_id", j.id, "trace_id", j.traceID(), "request_id", requestID,
		"experiment", spec.Experiment, "cache_source", src)
	return j
}

// specBackendLabel is the {backend="..."} label value a submitted spec
// tallies under: the normalized backend name, "all" for a compare run
// over every backend, or "none" for experiments with no backend knob.
func specBackendLabel(spec exp.JobSpec) string {
	if b := spec.Normalized().Backend; b != "" {
		return b
	}
	if spec.Experiment == "compare" {
		return "all"
	}
	return "none"
}

// startTrace equips a freshly registered job with its tracer and root
// "job" span. With tracing disabled the job simply carries no tracer
// and every span operation no-ops.
func (s *Server) startTrace(j *job, remote obs.SpanContext) {
	if s.cfg.DisableTracing {
		return
	}
	j.tracer = obs.NewTracer(remote.TraceID, s.cfg.TraceCap)
	j.span = j.tracer.StartSpan(remote, "job")
	j.span.SetAttr("job_id", j.id)
	j.span.SetAttr("experiment", j.spec.Experiment)
	if b := j.spec.Normalized().Backend; b != "" {
		j.span.SetAttr("backend", b)
	}
	if j.requestID != "" {
		j.span.SetAttr("request_id", j.requestID)
	}
}

// newJobLocked allocates and registers a queued job record.
func (s *Server) newJobLocked(spec exp.JobSpec, key, requestID string) *job {
	s.seq++
	j := &job{
		id:        jobID(s.seq),
		spec:      spec,
		key:       key,
		requestID: requestID,
		state:     StateQueued,
		submitted: time.Now(),
		subs:      make(map[chan struct{}]struct{}),
		done:      make(chan struct{}),
	}
	s.jobs[j.id] = j
	s.order = append(s.order, j)
	return j
}

// runJob executes one dequeued job through the harness: a single
// harness job wraps the runner, contributing panic→error conversion
// and the per-job timeout, while the experiment underneath fans its
// own simulations across the spec's parallelism.
func (s *Server) runJob(j *job) {
	s.mu.Lock()
	if j.state != StateQueued { // cancelled while waiting
		s.mu.Unlock()
		return
	}
	j.state = StateRunning
	j.started = time.Now()
	j.queueSpan.End() // dequeue closes the queue-wait span
	ctx, cancel := context.WithCancel(s.baseCtx)
	j.cancel = cancel
	j.notifySubs()
	queueWait := j.started.Sub(j.submitted)
	s.mu.Unlock()
	defer cancel()

	s.addStat("server.engine_runs", 1)
	s.observe("server.queue_wait_ms", uint64(queueWait.Milliseconds()))

	// The runner's context carries the job trace and a job-scoped
	// logger, so harness.job spans and experiment phase spans nest
	// under this "run" span and every log record downstream is tagged
	// with the job's identifiers.
	logger := s.cfg.Logger.With(
		"job_id", j.id, "trace_id", j.traceID(), "request_id", j.requestID)
	runSpan := j.tracer.StartSpan(j.span.Context(), "run")
	ctx = obs.WithLogger(ctx, logger)
	if j.tracer != nil {
		ctx = obs.NewContext(ctx, j.tracer)
		ctx = obs.ContextWithSpan(ctx, runSpan)
	}
	logger.Info("job dequeued", "queue_wait_ms", queueWait.Milliseconds())

	pool := exp.Pool{
		Parallel:  1, // overridden by the spec's parallel field when set
		Snapshots: s.snapshots,
		OnProgress: func(done, total, failed int) {
			s.mu.Lock()
			j.progress = ProgressEvent{Done: done, Total: total, Failed: failed}
			j.hasProg = true
			j.notifySubs()
			s.mu.Unlock()
		},
	}
	results := harness.Run(ctx, harness.Options{Parallel: 1, Timeout: s.cfg.JobTimeout},
		[]harness.Job[*exp.JobOutput]{func(ctx context.Context) (*exp.JobOutput, error) {
			return s.cfg.Runner(ctx, j.spec, pool)
		}})
	out, err := results[0].Value, results[0].Err
	runSpan.End()

	var rendered []byte
	if err == nil && out != nil && out.Export != nil {
		encSpan := j.tracer.StartSpan(j.span.Context(), "encode")
		var buf bytes.Buffer
		if werr := out.Export.WriteJSON(&buf); werr != nil {
			err = fmt.Errorf("rendering result: %w", werr)
		} else {
			rendered = buf.Bytes()
		}
		encSpan.End()
	} else if err == nil {
		err = errors.New("runner returned no result")
	}

	// Write the rendered result through to the persistent tier before
	// publishing it, so a process that restarts right after answering
	// can still serve the same bytes from the store. A failed write is
	// logged and counted, not fatal — the LRU still has the entry.
	if err == nil && s.cfg.Store != nil {
		if serr := s.cfg.Store.Put(j.key, rendered); serr != nil {
			s.addStat("server.store_errors", 1)
			logger.Warn("result store write failed", "key", j.key, "err", serr.Error())
		} else {
			s.addStat("server.store_puts", 1)
		}
	}

	s.mu.Lock()
	delete(s.inflight, j.key)
	j.cancel = nil
	j.finished = time.Now()
	switch {
	case err == nil:
		j.state = StateDone
		j.result = rendered
		s.cache.put(j.key, rendered)
	case errors.Is(err, context.Canceled):
		j.state = StateCancelled
		j.errMsg = err.Error()
	default:
		j.state = StateFailed
		j.errMsg = err.Error()
	}
	state := j.state
	j.endTrace()
	close(j.done)
	j.notifySubs()
	s.mu.Unlock()

	s.observe("server.job_wall_ms", uint64(j.finished.Sub(j.started).Milliseconds()))
	wallMS := j.finished.Sub(j.started).Milliseconds()
	switch state {
	case StateDone:
		s.addStat("server.jobs_completed", 1)
		logger.Info("job finished", "state", state, "wall_ms", wallMS)
	case StateCancelled:
		s.addStat("server.jobs_cancelled", 1)
		logger.Info("job finished", "state", state, "wall_ms", wallMS)
	default:
		s.addStat("server.jobs_failed", 1)
		logger.Error("job failed", "wall_ms", wallMS, "err", err.Error())
	}
	if err == nil && out.Stats != nil {
		s.statsMu.Lock()
		s.stats.Merge(out.Stats)
		s.statsMu.Unlock()
	}
}

// cancelJob cancels a queued or running job. It returns the job and
// nil on success, or an error describing why nothing was cancelled.
func (s *Server) cancelJob(id string) (*job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, errNoSuchJob
	}
	switch j.state {
	case StateQueued:
		// The worker that eventually dequeues it will skip it.
		j.state = StateCancelled
		j.errMsg = context.Canceled.Error()
		j.finished = time.Now()
		delete(s.inflight, j.key)
		j.endTrace()
		close(j.done)
		j.notifySubs()
		s.addStat("server.jobs_cancelled", 1)
		return j, nil
	case StateRunning:
		j.cancel() // the worker performs the terminal transition
		return j, nil
	default:
		return j, fmt.Errorf("job %s is already %s", id, j.state)
	}
}

var errNoSuchJob = errors.New("no such job")

// Drain stops intake and shuts the pool down: new submissions get 503,
// queued and running jobs are given until ctx expires to finish, and
// anything still running afterwards is cancelled. Drain returns nil on
// a clean drain and an error when the grace period expired (in-flight
// simulations do not observe cancellation mid-engine-run, so a forced
// drain may abandon worker goroutines to process exit).
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		close(s.queue)
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		s.baseCancel()
		return nil
	case <-ctx.Done():
	}

	// Grace expired: cancel everything still alive and give workers a
	// moment to notice before abandoning them.
	s.mu.Lock()
	forced := 0
	for _, j := range s.order {
		switch j.state {
		case StateRunning:
			j.cancel()
			forced++
		case StateQueued:
			j.state = StateCancelled
			j.errMsg = context.Canceled.Error()
			j.finished = time.Now()
			delete(s.inflight, j.key)
			j.endTrace()
			close(j.done)
			j.notifySubs()
			forced++
		}
	}
	s.mu.Unlock()
	s.baseCancel()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
	}
	return fmt.Errorf("drain grace period expired; cancelled %d in-flight jobs", forced)
}

// Draining reports whether Drain has begun.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}
