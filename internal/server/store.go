package server

// ResultStore is the persistent tier under the in-memory LRU result
// cache: rendered job exports, content-addressed by the canonical
// spec digest (exp.JobSpec.Key). The same digest keys the LRU, the
// store, and the cluster coordinator's shard routing — a regression
// test pins the three together, because a divergence would silently
// split the fleet-wide cache.
//
// Semantics the server relies on:
//
//   - Get returns (result, true, nil) only for a previously Put key.
//     A missing key is (nil, false, nil); a corrupt or unreadable
//     entry is an error, which the server treats as a miss (the job
//     re-runs and Put overwrites the bad entry).
//   - Put is atomic: a concurrent Get sees the old entry or the new
//     one, never a torn write. Re-putting a key is idempotent — the
//     simulator is deterministic, so both writers hold the same bytes.
//   - Implementations must be safe for concurrent use.
//
// The filesystem implementation lives in internal/cluster (FSStore) so
// one directory can back any number of workers and coordinators on a
// shared mount; nil disables the tier.
type ResultStore interface {
	Get(key string) ([]byte, bool, error)
	Put(key string, result []byte) error
}
