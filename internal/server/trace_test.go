package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"strings"
	"sync"
	"testing"

	"repro/internal/exp"
	"repro/internal/obs"
	"repro/internal/sim"
)

// spanningRunner opens a phase span through the job context, proving
// the runner sees the server's tracer and its spans land in the trace.
func spanningRunner(ctx context.Context, spec exp.JobSpec, pool exp.Pool) (*exp.JobOutput, error) {
	_, sp := obs.StartSpan(ctx, "fork.warmup")
	sp.End()
	return stubOutput(spec), nil
}

// getTrace fetches and decodes a job's trace document.
func getTrace(t *testing.T, ts string, jobID string) (int, TraceDoc) {
	t.Helper()
	code, body := getBody(t, ts+"/v1/jobs/"+jobID+"/trace")
	var doc TraceDoc
	if code == http.StatusOK {
		if err := json.Unmarshal(body, &doc); err != nil {
			t.Fatalf("decoding trace doc %q: %v", body, err)
		}
	}
	return code, doc
}

// findNode walks a span tree for the first node with the given name.
func findNode(nodes []*obs.SpanNode, name string) *obs.SpanNode {
	for _, n := range nodes {
		if n.Name == name {
			return n
		}
		if hit := findNode(n.Children, name); hit != nil {
			return hit
		}
	}
	return nil
}

// TestTraceparentPropagation submits with a client traceparent and
// checks the job adopts the trace ID, the response echoes the job's
// position in the trace, and the trace endpoint returns the span tree
// nested job → {queue.wait, run → harness.job → fork.warmup, encode}.
func TestTraceparentPropagation(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, Runner: spanningRunner})

	client := obs.SpanContext{TraceID: obs.NewTraceID(), SpanID: obs.NewSpanID()}
	req, err := http.NewRequest("POST", ts.URL+"/v1/jobs?wait=true",
		strings.NewReader(sweepSpec(300)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("traceparent", client.Traceparent())
	req.Header.Set("X-Request-ID", "req-abc123")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("submit: status %d body %s", resp.StatusCode, raw)
	}
	if got := resp.Header.Get("X-Request-ID"); got != "req-abc123" {
		t.Errorf("X-Request-ID echoed %q, want req-abc123", got)
	}
	echoed, ok := obs.ParseTraceparent(resp.Header.Get("traceparent"))
	if !ok || echoed.TraceID != client.TraceID {
		t.Errorf("response traceparent %q does not keep the client's trace ID",
			resp.Header.Get("traceparent"))
	}
	if echoed.SpanID == client.SpanID {
		t.Errorf("response traceparent reuses the client's span ID")
	}

	var doc JobDoc
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("job doc: %v", err)
	}
	if doc.TraceID != client.TraceID.String() {
		t.Errorf("job doc trace_id = %q, want %s", doc.TraceID, client.TraceID)
	}
	if doc.RequestID != "req-abc123" {
		t.Errorf("job doc request_id = %q", doc.RequestID)
	}
	summaries := map[string]bool{}
	for _, sp := range doc.Spans {
		summaries[sp.Name] = true
	}
	for _, want := range []string{"job", "queue.wait", "run", "encode", "harness.job", "fork.warmup"} {
		if !summaries[want] {
			t.Errorf("job doc span summaries lack %q: %v", want, summaries)
		}
	}

	code, trace := getTrace(t, ts.URL, doc.ID)
	if code != http.StatusOK {
		t.Fatalf("trace endpoint: status %d", code)
	}
	if trace.TraceID != client.TraceID.String() || trace.State != StateDone {
		t.Fatalf("trace doc = %+v", trace)
	}
	if len(trace.Spans) != 1 || trace.Spans[0].Name != "job" {
		t.Fatalf("trace roots = %+v, want single job root", trace.Spans)
	}
	root := trace.Spans[0]
	if root.ParentID != client.SpanID.String() {
		t.Errorf("job root parent = %q, want the client span %s", root.ParentID, client.SpanID)
	}
	if findNode(root.Children, "queue.wait") == nil {
		t.Errorf("no queue.wait under job root")
	}
	run := findNode(root.Children, "run")
	if run == nil {
		t.Fatalf("no run span under job root")
	}
	hj := findNode(run.Children, "harness.job")
	if hj == nil {
		t.Fatalf("no harness.job under run: %+v", run.Children)
	}
	if findNode(hj.Children, "fork.warmup") == nil {
		t.Errorf("runner's phase span did not nest under harness.job: %+v", hj.Children)
	}
}

// syncWriter serialises writes so test goroutines and server workers
// can share one log buffer.
type syncWriter struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (w *syncWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.Write(p)
}

func (w *syncWriter) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.String()
}

// TestLogRecordsCarryTraceIDs proves structured log records and the
// trace endpoint agree on the job's identifiers.
func TestLogRecordsCarryTraceIDs(t *testing.T) {
	var logs syncWriter
	_, ts := newTestServer(t, Config{
		Workers: 1,
		Runner:  (&countingRunner{}).run,
		Logger:  obs.NewLogger(&logs, "json", slog.LevelInfo),
	})
	status, doc, _ := postSpec(t, ts, sweepSpec(301), true)
	if status != http.StatusOK {
		t.Fatalf("submit: status %d", status)
	}
	if doc.TraceID == "" {
		t.Fatalf("job doc has no trace_id")
	}

	type record struct {
		Msg       string `json:"msg"`
		JobID     string `json:"job_id"`
		TraceID   string `json:"trace_id"`
		RequestID string `json:"request_id"`
		Status    int    `json:"status"`
	}
	var accepted, finished, httpReqs int
	sc := bufio.NewScanner(strings.NewReader(logs.String()))
	for sc.Scan() {
		var rec record
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("log line %q is not JSON: %v", sc.Text(), err)
		}
		switch rec.Msg {
		case "job accepted":
			accepted++
			if rec.TraceID != doc.TraceID || rec.JobID != doc.ID {
				t.Errorf("accepted record ids = %+v, want trace %s job %s",
					rec, doc.TraceID, doc.ID)
			}
			if rec.RequestID == "" {
				t.Errorf("accepted record lacks request_id")
			}
		case "job finished":
			finished++
			if rec.TraceID != doc.TraceID {
				t.Errorf("finished record trace_id = %q, want %s", rec.TraceID, doc.TraceID)
			}
		case "http request":
			httpReqs++
			if rec.RequestID == "" || rec.Status == 0 {
				t.Errorf("http record incomplete: %+v", rec)
			}
		}
	}
	if accepted != 1 || finished != 1 || httpReqs == 0 {
		t.Fatalf("log records: accepted=%d finished=%d http=%d", accepted, finished, httpReqs)
	}
}

// TestStatusLabelledResponseCounter drives a 404 and finds it in the
// metrics endpoint as a {code="404"}-labelled counter.
func TestStatusLabelledResponseCounter(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, Runner: (&countingRunner{}).run})
	if code, _ := getBody(t, ts.URL+"/v1/jobs/job-999999"); code != http.StatusNotFound {
		t.Fatalf("missing job: status %d, want 404", code)
	}
	code, body := getBody(t, ts.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics: status %d", code)
	}
	samples, types, err := sim.ParsePrometheus(bytes.NewReader(body))
	if err != nil {
		t.Fatalf("metrics do not parse: %v\n%s", err, body)
	}
	if types["overlaysim_server_http_responses_total"] != "counter" {
		t.Errorf("responses_total TYPE = %q", types["overlaysim_server_http_responses_total"])
	}
	found := false
	for _, smp := range samples {
		if smp.Name == "overlaysim_server_http_responses_total" &&
			smp.Label == "code" && smp.LabelVal == "404" {
			found = true
			if smp.Value < 1 {
				t.Errorf("404 counter = %v, want >= 1", smp.Value)
			}
		}
	}
	if !found {
		t.Fatalf("no code=\"404\" sample in metrics:\n%s", body)
	}
}

// TestSSEProgressCarriesIDs checks the progress payload is tagged with
// the job's identifiers.
func TestSSEProgressCarriesIDs(t *testing.T) {
	stage := make(chan struct{})
	runner := func(ctx context.Context, spec exp.JobSpec, pool exp.Pool) (*exp.JobOutput, error) {
		pool.OnProgress(1, 2, 0)
		select {
		case <-stage:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		return stubOutput(spec), nil
	}
	_, ts := newTestServer(t, Config{Workers: 1, Runner: runner})
	defer close(stage)

	_, doc, _ := postSpec(t, ts, sweepSpec(302), false)
	resp, err := http.Get(ts.URL + "/v1/jobs/" + doc.ID + "/events")
	if err != nil {
		t.Fatalf("GET events: %v", err)
	}
	defer resp.Body.Close()
	event, data := readSSEEvent(t, bufio.NewReader(resp.Body))
	if event != "progress" {
		t.Fatalf("first event = %q, want progress", event)
	}
	var p struct {
		Done      int    `json:"done"`
		JobID     string `json:"job_id"`
		TraceID   string `json:"trace_id"`
		RequestID string `json:"request_id"`
	}
	if err := json.Unmarshal([]byte(data), &p); err != nil {
		t.Fatalf("progress payload %q: %v", data, err)
	}
	if p.Done != 1 || p.JobID != doc.ID || p.TraceID != doc.TraceID || p.RequestID == "" {
		t.Fatalf("progress payload = %+v, want ids of job %s trace %s", p, doc.ID, doc.TraceID)
	}
}

// TestTracingDisabled proves DisableTracing yields jobs without traces
// (404 on the trace endpoint) while everything else keeps working.
func TestTracingDisabled(t *testing.T) {
	_, ts := newTestServer(t, Config{
		Workers: 1, Runner: (&countingRunner{}).run, DisableTracing: true,
	})
	status, doc, hdr := postSpec(t, ts, sweepSpec(303), true)
	if status != http.StatusOK {
		t.Fatalf("submit: status %d", status)
	}
	if doc.TraceID != "" || len(doc.Spans) != 0 {
		t.Errorf("disabled tracing still produced trace_id %q / %d spans",
			doc.TraceID, len(doc.Spans))
	}
	if hdr.Get("traceparent") != "" {
		t.Errorf("disabled tracing still echoed traceparent %q", hdr.Get("traceparent"))
	}
	if code, _ := getTrace(t, ts.URL, doc.ID); code != http.StatusNotFound {
		t.Errorf("trace endpoint with tracing disabled: status %d, want 404", code)
	}
}

// TestCachedJobTrace proves a cache hit carries its own short trace.
func TestCachedJobTrace(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, Runner: (&countingRunner{}).run})
	if status, _, _ := postSpec(t, ts, sweepSpec(304), true); status != http.StatusOK {
		t.Fatalf("first submit: status %d", status)
	}
	status, doc, _ := postSpec(t, ts, sweepSpec(304), false)
	if status != http.StatusOK || !doc.Cached {
		t.Fatalf("second submit: status %d cached %v, want cache hit", status, doc.Cached)
	}
	code, trace := getTrace(t, ts.URL, doc.ID)
	if code != http.StatusOK || len(trace.Spans) != 1 || trace.Spans[0].Name != "job" {
		t.Fatalf("cached job trace = %d %+v, want a lone job root", code, trace.Spans)
	}
	if trace.Spans[0].Attrs["cache"] != "hit" {
		t.Errorf("cached root attrs = %v, want cache=hit", trace.Spans[0].Attrs)
	}
}
