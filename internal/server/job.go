package server

import (
	"context"
	"encoding/json"
	"fmt"
	"time"

	"repro/internal/exp"
	"repro/internal/obs"
)

// Job states. A job moves queued → running → one terminal state;
// cancellation can short-circuit from either non-terminal state.
const (
	StateQueued    = "queued"
	StateRunning   = "running"
	StateDone      = "done"
	StateFailed    = "failed"
	StateCancelled = "cancelled"
)

// Cache sources: which tier answered a cached submission.
const (
	CacheMemory = "memory" // the in-process LRU
	CacheStore  = "store"  // the persistent result store
)

// ProgressEvent is one structured progress update: completed sub-jobs
// of the experiment's harness sweep (a fork suite counts benchmarks, a
// sweep counts points, …).
type ProgressEvent struct {
	Done   int `json:"done"`
	Total  int `json:"total"`
	Failed int `json:"failed"`
}

// job is the server-side record of one submission. All fields after
// the immutable header are guarded by the Server's mutex.
type job struct {
	id        string
	spec      exp.JobSpec
	key       string
	requestID string

	state     string
	cached    bool
	cacheSrc  string // CacheMemory or CacheStore, "" when not cached
	errMsg    string
	submitted time.Time
	started   time.Time
	finished  time.Time
	progress  ProgressEvent
	hasProg   bool
	result    []byte // rendered sim.Export JSON, exactly as the CLI's -json writes it

	// tracer records the job's spans; span is the root "job" span and
	// queueSpan the submit→dequeue wait. spans/dropped snapshot the
	// trace at the terminal transition (nil until then). All nil when
	// tracing is disabled — every obs operation on them no-ops.
	tracer    *obs.Tracer
	span      *obs.Span
	queueSpan *obs.Span
	spans     []obs.Span
	dropped   uint64

	cancel context.CancelFunc
	subs   map[chan struct{}]struct{} // SSE subscribers (signal channels, cap 1)
	done   chan struct{}              // closed exactly once on terminal transition
}

// traceID renders the job's trace ID, "" when tracing is disabled.
func (j *job) traceID() string {
	if j.tracer == nil {
		return ""
	}
	return j.tracer.TraceID().String()
}

// endTrace closes any still-open lifecycle spans and snapshots the
// trace; it runs exactly once, at the job's terminal transition.
// Span.End is idempotent, so spans already closed on the happy path
// (queue.wait at dequeue, run/encode in runJob) are unaffected.
// Caller holds the Server mutex.
func (j *job) endTrace() {
	if j.tracer == nil {
		return
	}
	j.queueSpan.End()
	j.span.End()
	j.spans = j.tracer.Spans()
	j.dropped = j.tracer.Dropped()
}

// liveSpans snapshots the recorded spans: the terminal snapshot when
// the job is finished, the tracer's current contents while it runs.
// Caller holds the Server mutex.
func (j *job) liveSpans() []obs.Span {
	if j.spans != nil {
		return j.spans
	}
	return j.tracer.Spans()
}

// terminal reports whether the job reached a final state.
func (j *job) terminal() bool {
	return j.state == StateDone || j.state == StateFailed || j.state == StateCancelled
}

// SpanSummary is one completed span in a job document: name plus
// timing, offsets in microseconds from the trace's first span.
type SpanSummary struct {
	Name    string `json:"name"`
	StartUS int64  `json:"start_us"`
	DurUS   int64  `json:"dur_us"`
}

// JobDoc is the wire representation of a job (see docs/API.md).
type JobDoc struct {
	ID          string          `json:"id"`
	State       string          `json:"state"`
	Cached      bool            `json:"cached"`
	CacheSource string          `json:"cache_source,omitempty"` // memory | store, cached jobs only
	Spec        exp.JobSpec     `json:"spec"`
	Key         string          `json:"key"`
	Worker      string          `json:"worker,omitempty"` // coordinator-routed jobs: the shard's URL
	Error       string          `json:"error,omitempty"`
	TraceID     string          `json:"trace_id,omitempty"`
	RequestID   string          `json:"request_id,omitempty"`
	SubmittedAt time.Time       `json:"submitted_at"`
	StartedAt   *time.Time      `json:"started_at,omitempty"`
	FinishedAt  *time.Time      `json:"finished_at,omitempty"`
	Progress    *ProgressEvent  `json:"progress,omitempty"`
	Spans       []SpanSummary   `json:"spans,omitempty"` // terminal jobs only
	Result      json.RawMessage `json:"result,omitempty"`
}

// doc renders the job for the wire. withResult controls whether the
// (potentially large) result document rides along; listings omit it.
// Caller holds the Server mutex.
func (j *job) doc(withResult bool) JobDoc {
	d := JobDoc{
		ID:          j.id,
		State:       j.state,
		Cached:      j.cached,
		CacheSource: j.cacheSrc,
		Spec:        j.spec,
		Key:         j.key,
		Error:       j.errMsg,
		TraceID:     j.traceID(),
		RequestID:   j.requestID,
		SubmittedAt: j.submitted,
	}
	if len(j.spans) > 0 {
		base := j.spans[0].Start
		for _, sp := range j.spans {
			if sp.Start.Before(base) {
				base = sp.Start
			}
		}
		d.Spans = make([]SpanSummary, len(j.spans))
		for i, sp := range j.spans {
			d.Spans[i] = SpanSummary{
				Name:    sp.Name,
				StartUS: sp.Start.Sub(base).Microseconds(),
				DurUS:   sp.Dur.Microseconds(),
			}
		}
	}
	if !j.started.IsZero() {
		t := j.started
		d.StartedAt = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		d.FinishedAt = &t
	}
	if j.hasProg {
		p := j.progress
		d.Progress = &p
	}
	if withResult && j.result != nil {
		d.Result = json.RawMessage(j.result)
	}
	return d
}

// notifySubs pokes every subscriber without blocking: each channel has
// capacity one, so a slow reader coalesces updates instead of stalling
// the worker. Caller holds the Server mutex.
func (j *job) notifySubs() {
	for ch := range j.subs {
		select {
		case ch <- struct{}{}:
		default:
		}
	}
}

// jobID formats the sequential job identifier.
func jobID(seq int) string { return fmt.Sprintf("job-%06d", seq) }
