package server

import (
	"context"
	"encoding/json"
	"fmt"
	"time"

	"repro/internal/exp"
)

// Job states. A job moves queued → running → one terminal state;
// cancellation can short-circuit from either non-terminal state.
const (
	StateQueued    = "queued"
	StateRunning   = "running"
	StateDone      = "done"
	StateFailed    = "failed"
	StateCancelled = "cancelled"
)

// ProgressEvent is one structured progress update: completed sub-jobs
// of the experiment's harness sweep (a fork suite counts benchmarks, a
// sweep counts points, …).
type ProgressEvent struct {
	Done   int `json:"done"`
	Total  int `json:"total"`
	Failed int `json:"failed"`
}

// job is the server-side record of one submission. All fields after
// the immutable header are guarded by the Server's mutex.
type job struct {
	id   string
	spec exp.JobSpec
	key  string

	state     string
	cached    bool
	errMsg    string
	submitted time.Time
	started   time.Time
	finished  time.Time
	progress  ProgressEvent
	hasProg   bool
	result    []byte // rendered sim.Export JSON, exactly as the CLI's -json writes it

	cancel context.CancelFunc
	subs   map[chan struct{}]struct{} // SSE subscribers (signal channels, cap 1)
	done   chan struct{}              // closed exactly once on terminal transition
}

// terminal reports whether the job reached a final state.
func (j *job) terminal() bool {
	return j.state == StateDone || j.state == StateFailed || j.state == StateCancelled
}

// JobDoc is the wire representation of a job (see docs/API.md).
type JobDoc struct {
	ID          string          `json:"id"`
	State       string          `json:"state"`
	Cached      bool            `json:"cached"`
	Spec        exp.JobSpec     `json:"spec"`
	Key         string          `json:"key"`
	Error       string          `json:"error,omitempty"`
	SubmittedAt time.Time       `json:"submitted_at"`
	StartedAt   *time.Time      `json:"started_at,omitempty"`
	FinishedAt  *time.Time      `json:"finished_at,omitempty"`
	Progress    *ProgressEvent  `json:"progress,omitempty"`
	Result      json.RawMessage `json:"result,omitempty"`
}

// doc renders the job for the wire. withResult controls whether the
// (potentially large) result document rides along; listings omit it.
// Caller holds the Server mutex.
func (j *job) doc(withResult bool) JobDoc {
	d := JobDoc{
		ID:          j.id,
		State:       j.state,
		Cached:      j.cached,
		Spec:        j.spec,
		Key:         j.key,
		Error:       j.errMsg,
		SubmittedAt: j.submitted,
	}
	if !j.started.IsZero() {
		t := j.started
		d.StartedAt = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		d.FinishedAt = &t
	}
	if j.hasProg {
		p := j.progress
		d.Progress = &p
	}
	if withResult && j.result != nil {
		d.Result = json.RawMessage(j.result)
	}
	return d
}

// notifySubs pokes every subscriber without blocking: each channel has
// capacity one, so a slow reader coalesces updates instead of stalling
// the worker. Caller holds the Server mutex.
func (j *job) notifySubs() {
	for ch := range j.subs {
		select {
		case ch <- struct{}{}:
		default:
		}
	}
}

// jobID formats the sequential job identifier.
func jobID(seq int) string { return fmt.Sprintf("job-%06d", seq) }
