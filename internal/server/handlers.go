package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"time"

	"repro/internal/exp"
	"repro/internal/obs"
	"repro/internal/sim"
)

// maxSpecBytes bounds a job-spec request body; canonical specs are a
// few hundred bytes.
const maxSpecBytes = 1 << 20

// Handler returns the service's HTTP routes (see docs/API.md).
func Handler(s *Server) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /readyz", s.handleReady)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleGet)
	mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /v1/jobs/{id}/trace", s.handleTrace)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	return instrument(s, mux)
}

// Handler is the method form of the package-level Handler.
func (s *Server) Handler() http.Handler { return Handler(s) }

// statusWriter captures the response status for the request middleware.
// It forwards Flush so SSE streaming keeps working through the wrap.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// requestIDKey carries the request's ID through the handler context.
type requestIDKey struct{}

func requestID(r *http.Request) string {
	id, _ := r.Context().Value(requestIDKey{}).(string)
	return id
}

// instrument wraps every route: it assigns (or adopts) the request ID,
// echoes it as X-Request-ID, counts the request and its response
// status — every status, labelled by code, satisfying the error-path
// accounting — and logs one structured record per request.
func instrument(s *Server, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		reqID := r.Header.Get("X-Request-ID")
		if reqID == "" {
			reqID = obs.NewSpanID().String()
		}
		w.Header().Set("X-Request-ID", reqID)
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		s.addStat("server.http_requests", 1)
		ctx := contextWithRequestID(r.Context(), reqID)
		next.ServeHTTP(sw, r.WithContext(ctx))
		if sw.status == 0 {
			sw.status = http.StatusOK
		}
		s.statsMu.Lock()
		s.statusCounts[sw.status]++
		s.statsMu.Unlock()
		s.cfg.Logger.Info("http request",
			"method", r.Method, "path", r.URL.Path, "status", sw.status,
			"request_id", reqID, "dur_ms", time.Since(start).Milliseconds())
	})
}

func contextWithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, requestIDKey{}, id)
}

// errorBody is every non-2xx JSON response.
type errorBody struct {
	Error    string   `json:"error"`
	Problems []string `json:"problems,omitempty"`
	JobID    string   `json:"job_id,omitempty"`
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client gone; nothing to do
}

func writeError(w http.ResponseWriter, status int, err error, jobID string) {
	body := errorBody{Error: err.Error(), JobID: jobID}
	var ve *exp.ValidationError
	if errors.As(err, &ve) {
		body.Problems = ve.Problems
	}
	writeJSON(w, status, body)
}

// healthDoc reports the process's live state: queue occupancy, job
// counts by phase, and whether a drain has begun.
type healthDoc struct {
	Status        string `json:"status"`
	QueueDepth    int    `json:"queue_depth"`
	QueueCapacity int    `json:"queue_capacity"`
	Queued        int    `json:"queued"`
	Running       int    `json:"running"`
	Draining      bool   `json:"draining"`
}

func (s *Server) health() healthDoc {
	s.mu.Lock()
	defer s.mu.Unlock()
	d := healthDoc{
		Status:        "ok",
		QueueDepth:    len(s.queue),
		QueueCapacity: cap(s.queue),
		Draining:      s.draining,
	}
	if s.draining {
		d.Status = "draining"
	}
	for _, j := range s.order {
		switch j.state {
		case StateQueued:
			d.Queued++
		case StateRunning:
			d.Running++
		}
	}
	return d
}

// handleHealth is liveness: always 200 while the process can answer,
// with the drain state and queue occupancy in the body. Readiness —
// "send me traffic" — is /readyz, which flips to 503 during drain.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.health())
}

// handleReady is readiness: 503 once Drain begins (new submissions
// are already being refused), 200 otherwise.
func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	doc := s.health()
	if doc.Draining {
		writeJSON(w, http.StatusServiceUnavailable, doc)
		return
	}
	writeJSON(w, http.StatusOK, doc)
}

// handleSubmit accepts a JSON job spec. With ?wait=true the response
// is deferred until the job reaches a terminal state (200); otherwise
// an accepted job answers 202 immediately. Cache hits always answer
// 200 with the completed job document; the X-Overlaysim-Cache header
// names the tier that answered (`hit` = in-memory LRU, `hit-store` =
// persistent store, `miss` = the engine ran). A concurrent identical
// submission joins the job already in flight (single-flight — the
// engine runs once) and is marked with an X-Overlaysim-Singleflight
// header naming the shared job. A valid `traceparent` request header
// is adopted as the job trace's ID (the job's root span becomes a
// child of the client's span); the response echoes the job's own trace
// position in the same header.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	spec, err := exp.ParseJobSpec(http.MaxBytesReader(w, r.Body, maxSpecBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, err, "")
		return
	}
	remote, _ := obs.TraceparentFromHeader(r.Header)
	j, status, joined, err := s.submit(spec, requestID(r), remote)
	if err != nil {
		if status == http.StatusTooManyRequests {
			w.Header().Set("Retry-After",
				strconv.Itoa(int((s.cfg.RetryAfter+time.Second-1)/time.Second)))
		}
		jobID := ""
		if j != nil {
			jobID = j.id
		}
		writeError(w, status, err, jobID)
		return
	}
	obs.PropagateTraceparent(w.Header(), j.span.Context())
	switch {
	case j.cached && j.cacheSrc == CacheStore:
		w.Header().Set("X-Overlaysim-Cache", "hit-store")
	case j.cached:
		w.Header().Set("X-Overlaysim-Cache", "hit")
	default:
		w.Header().Set("X-Overlaysim-Cache", "miss")
	}
	if joined {
		w.Header().Set("X-Overlaysim-Singleflight", j.id)
	}
	if status == http.StatusAccepted && wantWait(r) {
		select {
		case <-j.done:
			status = http.StatusOK
		case <-r.Context().Done():
			return // client gave up; the job keeps running
		}
	}
	s.mu.Lock()
	doc := j.doc(true)
	s.mu.Unlock()
	w.Header().Set("Location", "/v1/jobs/"+j.id)
	writeJSON(w, status, doc)
}

func wantWait(r *http.Request) bool {
	switch r.URL.Query().Get("wait") {
	case "1", "true", "yes":
		return true
	}
	return false
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	docs := make([]JobDoc, 0, len(s.order))
	for _, j := range s.order {
		docs = append(docs, j.doc(false))
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]interface{}{"jobs": docs})
}

// lookup resolves the path's job id, answering 404 itself on a miss.
func (s *Server) lookup(w http.ResponseWriter, r *http.Request) (*job, bool) {
	s.mu.Lock()
	j, ok := s.jobs[r.PathValue("id")]
	s.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no such job %q", r.PathValue("id")), "")
	}
	return j, ok
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(w, r)
	if !ok {
		return
	}
	s.mu.Lock()
	doc := j.doc(true)
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, doc)
}

// handleResult serves the raw export document — exactly the bytes the
// equivalent CLI invocation would have written with -json. 409 until
// the job is done.
func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(w, r)
	if !ok {
		return
	}
	s.mu.Lock()
	state := j.state
	result := j.result
	s.mu.Unlock()
	if state != StateDone {
		writeError(w, http.StatusConflict,
			fmt.Errorf("job %s is %s; no result to serve", j.id, state), j.id)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(result) //nolint:errcheck
}

// TraceDoc is the wire form of a job's span trace: identifiers plus
// the recorded spans nested by parentage (see docs/OBSERVABILITY.md).
type TraceDoc struct {
	JobID     string          `json:"job_id"`
	TraceID   string          `json:"trace_id"`
	RequestID string          `json:"request_id,omitempty"`
	State     string          `json:"state"`
	Dropped   uint64          `json:"dropped_spans,omitempty"`
	Spans     []*obs.SpanNode `json:"spans"`
}

// handleTrace serves the job's span tree. Running jobs answer with the
// spans recorded so far (the still-open root appears once the job
// finishes); disabled tracing answers 404.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(w, r)
	if !ok {
		return
	}
	s.mu.Lock()
	doc := TraceDoc{
		JobID:     j.id,
		TraceID:   j.traceID(),
		RequestID: j.requestID,
		State:     j.state,
	}
	var spans []obs.Span
	if j.tracer != nil {
		spans = j.liveSpans()
		doc.Dropped = j.tracer.Dropped()
	}
	s.mu.Unlock()
	if j.tracer == nil {
		writeError(w, http.StatusNotFound,
			fmt.Errorf("tracing is disabled; job %s carries no trace", j.id), j.id)
		return
	}
	doc.Spans = obs.BuildTree(spans)
	if doc.Spans == nil {
		doc.Spans = []*obs.SpanNode{}
	}
	writeJSON(w, http.StatusOK, doc)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, err := s.cancelJob(r.PathValue("id"))
	if errors.Is(err, errNoSuchJob) {
		writeError(w, http.StatusNotFound, err, "")
		return
	}
	if err != nil {
		writeError(w, http.StatusConflict, err, j.id)
		return
	}
	s.mu.Lock()
	doc := j.doc(false)
	s.mu.Unlock()
	writeJSON(w, http.StatusAccepted, doc)
}

// handleEvents streams the job's lifecycle as Server-Sent Events:
// `progress` events carry harness completion totals, and one terminal
// event — named after the final state — carries the full job document.
// Progress is coalescing (a slow client sees the latest state, not
// every tick); the terminal event is always delivered.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(w, r)
	if !ok {
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError,
			errors.New("streaming unsupported by this connection"), j.id)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	fl.Flush() // release the headers before the first event arrives

	sub := make(chan struct{}, 1)
	s.mu.Lock()
	j.subs[sub] = struct{}{}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(j.subs, sub)
		s.mu.Unlock()
	}()

	// Progress payloads carry the job's identifiers so a stream
	// consumer can correlate events with log records and the trace.
	type progressPayload struct {
		ProgressEvent
		JobID     string `json:"job_id"`
		TraceID   string `json:"trace_id,omitempty"`
		RequestID string `json:"request_id,omitempty"`
	}

	var sent ProgressEvent
	sentAny := false
	for {
		s.mu.Lock()
		prog, hasProg := j.progress, j.hasProg
		terminal := j.terminal()
		var finalDoc JobDoc
		var state string
		if terminal {
			finalDoc = j.doc(true)
			state = j.state
		}
		s.mu.Unlock()

		if hasProg && (!sentAny || prog != sent) {
			payload := progressPayload{
				ProgressEvent: prog, JobID: j.id,
				TraceID: j.traceID(), RequestID: j.requestID,
			}
			if err := writeSSE(w, "progress", payload); err != nil {
				return
			}
			sent, sentAny = prog, true
			fl.Flush()
		}
		if terminal {
			if writeSSE(w, state, finalDoc) == nil {
				fl.Flush()
			}
			return
		}
		select {
		case <-sub:
		case <-r.Context().Done():
			return
		}
	}
}

// writeSSE emits one event: `event: <name>` + single-line JSON data.
func writeSSE(w http.ResponseWriter, event string, data interface{}) error {
	b, err := json.Marshal(data)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, b)
	return err
}

// handleMetrics renders the telemetry registry — server counters and
// histograms plus simulator stats merged in from completed jobs — in
// Prometheus text format, with live queue gauges on top.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	fmt.Fprintf(w, "# HELP overlaysim_server_queue_depth jobs waiting in the bounded queue\n"+
		"# TYPE overlaysim_server_queue_depth gauge\noverlaysim_server_queue_depth %d\n",
		len(s.queue))
	fmt.Fprintf(w, "# HELP overlaysim_server_queue_capacity bounded queue capacity\n"+
		"# TYPE overlaysim_server_queue_capacity gauge\noverlaysim_server_queue_capacity %d\n",
		cap(s.queue))
	if s.snapshots != nil {
		fmt.Fprintf(w, "# HELP overlaysim_server_snapshot_cache_hits warm-state family lookups served from cache\n"+
			"# TYPE overlaysim_server_snapshot_cache_hits counter\noverlaysim_server_snapshot_cache_hits %d\n",
			s.snapshots.Hits())
		fmt.Fprintf(w, "# HELP overlaysim_server_snapshot_cache_misses warm-state family lookups that built a snapshot\n"+
			"# TYPE overlaysim_server_snapshot_cache_misses counter\noverlaysim_server_snapshot_cache_misses %d\n",
			s.snapshots.Misses())
		fmt.Fprintf(w, "# HELP overlaysim_server_snapshot_cache_entries cached warm-state families\n"+
			"# TYPE overlaysim_server_snapshot_cache_entries gauge\noverlaysim_server_snapshot_cache_entries %d\n",
			s.snapshots.Len())
	}
	s.statsMu.Lock()
	defer s.statsMu.Unlock()
	if len(s.statusCounts) > 0 {
		const m = "overlaysim_server_http_responses_total"
		fmt.Fprintf(w, "# HELP %s HTTP responses by status code\n# TYPE %s counter\n", m, m)
		codes := make([]int, 0, len(s.statusCounts))
		for code := range s.statusCounts {
			codes = append(codes, code)
		}
		sort.Ints(codes)
		for _, code := range codes {
			fmt.Fprintf(w, "%s{code=\"%s\"} %d\n",
				m, sim.PromEscapeLabel(strconv.Itoa(code)), s.statusCounts[code])
		}
	}
	if len(s.backendCounts) > 0 {
		const m = "overlaysim_server_jobs_total"
		fmt.Fprintf(w, "# HELP %s jobs submitted by translation backend\n# TYPE %s counter\n", m, m)
		backends := make([]string, 0, len(s.backendCounts))
		for b := range s.backendCounts {
			backends = append(backends, b)
		}
		sort.Strings(backends)
		for _, b := range backends {
			fmt.Fprintf(w, "%s{backend=\"%s\"} %d\n",
				m, sim.PromEscapeLabel(b), s.backendCounts[b])
		}
	}
	sim.WritePrometheus(w, "overlaysim_", s.stats) //nolint:errcheck // client gone
}
