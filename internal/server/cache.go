package server

import "container/list"

// resultCache is a bounded LRU of rendered job results keyed by the
// canonical spec hash. Simulations are deterministic, so entries never
// go stale — the bound exists only to cap memory. Not safe for
// concurrent use; the Server guards it with its own mutex.
type resultCache struct {
	max     int
	ll      *list.List // front = most recently used
	entries map[string]*list.Element
}

type cacheEntry struct {
	key    string
	result []byte
}

func newResultCache(max int) *resultCache {
	return &resultCache{max: max, ll: list.New(), entries: make(map[string]*list.Element)}
}

// get returns the cached result and refreshes its recency.
func (c *resultCache) get(key string) ([]byte, bool) {
	if c.max <= 0 {
		return nil, false
	}
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).result, true
}

// put inserts (or refreshes) a result and evicts the least recently
// used entry beyond the bound.
func (c *resultCache) put(key string, result []byte) {
	if c.max <= 0 {
		return
	}
	if el, ok := c.entries[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*cacheEntry).result = result
		return
	}
	c.entries[key] = c.ll.PushFront(&cacheEntry{key: key, result: result})
	for c.ll.Len() > c.max {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
	}
}

// len reports the number of cached results.
func (c *resultCache) len() int { return c.ll.Len() }
