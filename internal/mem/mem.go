// Package mem models main memory: a pool of 4 KB physical frames with
// byte-addressable contents, a frame allocator, and the zero page. Main
// memory is split between regular physical pages and the Overlay Memory
// Store (the OMS region is managed by internal/oms; this package only
// hands out frames).
//
// Contents are stored functionally so that techniques built on the
// framework (fork isolation, deduplication, speculation, SpMV) can be
// verified for value-correctness, not just timing.
package mem

import (
	"fmt"

	"repro/internal/arch"
)

// ZeroPPN is the reserved all-zeroes physical page. Sparse data structures
// map every virtual page to it and keep non-zero lines in overlays (§5.2).
const ZeroPPN arch.PPN = 0

// Memory is byte-addressable main memory with lazy frame materialisation:
// a frame with no contents reads as zeroes and occupies no host memory.
// The frame and allocation tables are dense slices indexed by frame
// number, so per-access lookups are a bounds check and a load rather
// than a map probe.
type Memory struct {
	frames     []*[arch.PageSize]byte // nil entry: frame reads as zero
	totalPages int
	nextFree   arch.PPN
	freeList   []arch.PPN
	allocated  []bool
	allocCount int

	// shared, when non-nil, is a bitmap over frames marking pages whose
	// backing array is shared with a Snapshot (copy-on-write): the first
	// materialising write to a shared frame copies it into a private
	// array. Replacing the frame pointer (Alloc recycling, CopyPage of a
	// zero source) only clears the bit — the shared array is never
	// mutated, so concurrent forks of one snapshot stay independent.
	shared      []uint64
	bytesCopied uint64
}

// New creates a memory with capacity for totalPages physical frames.
// Frame 0 is reserved as the zero page and is never handed out.
func New(totalPages int) *Memory {
	if totalPages < 2 {
		panic("mem: need at least two pages (zero page + one usable)")
	}
	m := &Memory{
		frames:     make([]*[arch.PageSize]byte, totalPages),
		totalPages: totalPages,
		nextFree:   1,
		allocated:  make([]bool, totalPages),
		allocCount: 1,
	}
	m.allocated[ZeroPPN] = true
	return m
}

// TotalPages returns the configured capacity in frames.
func (m *Memory) TotalPages() int { return m.totalPages }

// AllocatedPages returns the number of frames currently allocated,
// including the reserved zero page.
func (m *Memory) AllocatedPages() int { return m.allocCount }

// FreePages returns the number of frames still available.
func (m *Memory) FreePages() int { return m.totalPages - m.allocCount }

// Alloc returns a free frame. Frames are handed out zeroed.
func (m *Memory) Alloc() (arch.PPN, error) {
	if n := len(m.freeList); n > 0 {
		ppn := m.freeList[n-1]
		m.freeList = m.freeList[:n-1]
		m.allocated[ppn] = true
		m.allocCount++
		m.frames[ppn] = nil // recycled frames read as zero again
		m.clearShared(ppn)
		return ppn, nil
	}
	if int(m.nextFree) >= m.totalPages {
		return 0, fmt.Errorf("mem: out of physical memory (%d pages)", m.totalPages)
	}
	ppn := m.nextFree
	m.nextFree++
	m.allocated[ppn] = true
	m.allocCount++
	return ppn, nil
}

// Free returns a frame to the allocator. Freeing the zero page or an
// unallocated frame panics: both indicate a bookkeeping bug upstream.
func (m *Memory) Free(ppn arch.PPN) {
	if ppn == ZeroPPN {
		panic("mem: freeing the zero page")
	}
	if !m.allocated[ppn] {
		panic(fmt.Sprintf("mem: double free of ppn %#x", uint64(ppn)))
	}
	m.allocated[ppn] = false
	m.allocCount--
	m.freeList = append(m.freeList, ppn)
}

// Allocated reports whether the frame is currently allocated.
func (m *Memory) Allocated(ppn arch.PPN) bool {
	return int(ppn) < len(m.allocated) && m.allocated[ppn]
}

func (m *Memory) frame(ppn arch.PPN, materialise bool) *[arch.PageSize]byte {
	f := m.frames[ppn]
	if !materialise {
		return f
	}
	if f == nil {
		f = new([arch.PageSize]byte)
		m.frames[ppn] = f
		return f
	}
	if m.shared != nil && m.shared[ppn>>6]&(1<<(uint(ppn)&63)) != 0 {
		// First write to a frame shared with a snapshot: copy on write.
		c := new([arch.PageSize]byte)
		*c = *f
		m.frames[ppn] = c
		m.shared[ppn>>6] &^= 1 << (uint(ppn) & 63)
		m.bytesCopied += arch.PageSize
		return c
	}
	return f
}

func (m *Memory) clearShared(ppn arch.PPN) {
	if m.shared != nil {
		m.shared[ppn>>6] &^= 1 << (uint(ppn) & 63)
	}
}

// ReadLine copies cache line `line` of frame ppn into dst (64 bytes).
func (m *Memory) ReadLine(ppn arch.PPN, line int, dst []byte) {
	checkLine(line)
	f := m.frame(ppn, false)
	if f == nil {
		for i := range dst[:arch.LineSize] {
			dst[i] = 0
		}
		return
	}
	copy(dst, f[line*arch.LineSize:(line+1)*arch.LineSize])
}

// WriteLine stores 64 bytes into cache line `line` of frame ppn.
func (m *Memory) WriteLine(ppn arch.PPN, line int, src []byte) {
	checkLine(line)
	if ppn == ZeroPPN {
		panic("mem: write to the zero page")
	}
	f := m.frame(ppn, true)
	copy(f[line*arch.LineSize:(line+1)*arch.LineSize], src)
}

// Read returns the byte at (ppn, offset).
func (m *Memory) Read(ppn arch.PPN, offset uint64) byte {
	checkOffset(offset)
	f := m.frame(ppn, false)
	if f == nil {
		return 0
	}
	return f[offset]
}

// Write stores one byte at (ppn, offset).
func (m *Memory) Write(ppn arch.PPN, offset uint64, b byte) {
	checkOffset(offset)
	if ppn == ZeroPPN {
		panic("mem: write to the zero page")
	}
	m.frame(ppn, true)[offset] = b
}

// Read64 loads a little-endian uint64 at (ppn, offset); the access must
// not cross a page boundary.
func (m *Memory) Read64(ppn arch.PPN, offset uint64) uint64 {
	if offset+8 > arch.PageSize {
		panic("mem: Read64 crosses page boundary")
	}
	f := m.frame(ppn, false)
	if f == nil {
		return 0
	}
	var v uint64
	for i := uint64(0); i < 8; i++ {
		v |= uint64(f[offset+i]) << (8 * i)
	}
	return v
}

// Write64 stores a little-endian uint64 at (ppn, offset).
func (m *Memory) Write64(ppn arch.PPN, offset uint64, v uint64) {
	if offset+8 > arch.PageSize {
		panic("mem: Write64 crosses page boundary")
	}
	if ppn == ZeroPPN {
		panic("mem: write to the zero page")
	}
	f := m.frame(ppn, true)
	for i := uint64(0); i < 8; i++ {
		f[offset+i] = byte(v >> (8 * i))
	}
}

// ReadSpan copies len(dst) bytes starting at (ppn, offset) into dst; the
// span must not cross the page boundary. Unmaterialised frames read as
// zeroes.
func (m *Memory) ReadSpan(ppn arch.PPN, offset uint64, dst []byte) {
	if offset+uint64(len(dst)) > arch.PageSize {
		panic("mem: ReadSpan crosses page boundary")
	}
	f := m.frame(ppn, false)
	if f == nil {
		for i := range dst {
			dst[i] = 0
		}
		return
	}
	copy(dst, f[offset:])
}

// WriteSpan stores src starting at (ppn, offset); the span must not cross
// the page boundary.
func (m *Memory) WriteSpan(ppn arch.PPN, offset uint64, src []byte) {
	if offset+uint64(len(src)) > arch.PageSize {
		panic("mem: WriteSpan crosses page boundary")
	}
	if ppn == ZeroPPN {
		panic("mem: write to the zero page")
	}
	copy(m.frame(ppn, true)[offset:], src)
}

// CopySpan copies n bytes from (src, srcOff) to (dst, dstOff) within main
// memory without an intermediate buffer; neither span may cross its page
// boundary. It is the segment-copy primitive of the Overlay Memory Store
// (migration, spill, refill).
func (m *Memory) CopySpan(dst arch.PPN, dstOff uint64, src arch.PPN, srcOff uint64, n int) {
	if srcOff+uint64(n) > arch.PageSize || dstOff+uint64(n) > arch.PageSize {
		panic("mem: CopySpan crosses page boundary")
	}
	if dst == ZeroPPN {
		panic("mem: write to the zero page")
	}
	sf := m.frame(src, false)
	df := m.frame(dst, true)
	if sf == nil {
		for i := range df[dstOff : dstOff+uint64(n)] {
			df[dstOff+uint64(i)] = 0
		}
		return
	}
	copy(df[dstOff:dstOff+uint64(n)], sf[srcOff:srcOff+uint64(n)])
}

// CopyPage copies the full contents of frame src to frame dst.
func (m *Memory) CopyPage(dst, src arch.PPN) {
	if dst == ZeroPPN {
		panic("mem: write to the zero page")
	}
	sf := m.frame(src, false)
	if sf == nil {
		m.frames[dst] = nil // copying a zero frame: dst reads as zero
		m.clearShared(dst)
		return
	}
	df := m.frame(dst, true)
	*df = *sf
}

// PageIsZero reports whether every byte of the frame is zero.
func (m *Memory) PageIsZero(ppn arch.PPN) bool {
	f := m.frame(ppn, false)
	if f == nil {
		return true
	}
	for _, b := range f {
		if b != 0 {
			return false
		}
	}
	return true
}

func checkLine(line int) {
	if line < 0 || line >= arch.LinesPerPage {
		panic(fmt.Sprintf("mem: line index %d out of range", line))
	}
}

func checkOffset(offset uint64) {
	if offset >= arch.PageSize {
		panic(fmt.Sprintf("mem: offset %#x out of range", offset))
	}
}
