package mem

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/arch"
)

func TestAllocFreeCycle(t *testing.T) {
	m := New(8)
	if m.AllocatedPages() != 1 { // zero page
		t.Fatalf("initial allocated = %d, want 1", m.AllocatedPages())
	}
	var ppns []arch.PPN
	for i := 0; i < 7; i++ {
		ppn, err := m.Alloc()
		if err != nil {
			t.Fatalf("alloc %d: %v", i, err)
		}
		if ppn == ZeroPPN {
			t.Fatal("allocator handed out the zero page")
		}
		ppns = append(ppns, ppn)
	}
	if _, err := m.Alloc(); err == nil {
		t.Fatal("expected out-of-memory")
	}
	m.Free(ppns[3])
	if m.FreePages() != 1 {
		t.Fatalf("FreePages = %d, want 1", m.FreePages())
	}
	again, err := m.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	if again != ppns[3] {
		t.Fatalf("recycled frame = %#x, want %#x", uint64(again), uint64(ppns[3]))
	}
}

func TestRecycledFrameIsZeroed(t *testing.T) {
	m := New(4)
	ppn, _ := m.Alloc()
	m.Write(ppn, 100, 0xab)
	m.Free(ppn)
	ppn2, _ := m.Alloc()
	if ppn2 != ppn {
		t.Fatalf("expected frame reuse")
	}
	if m.Read(ppn2, 100) != 0 {
		t.Fatal("recycled frame not zeroed")
	}
}

func TestDoubleFreePanics(t *testing.T) {
	m := New(4)
	ppn, _ := m.Alloc()
	m.Free(ppn)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on double free")
		}
	}()
	m.Free(ppn)
}

func TestZeroPageProtected(t *testing.T) {
	m := New(4)
	for name, fn := range map[string]func(){
		"Write":     func() { m.Write(ZeroPPN, 0, 1) },
		"WriteLine": func() { m.WriteLine(ZeroPPN, 0, make([]byte, 64)) },
		"Write64":   func() { m.Write64(ZeroPPN, 0, 1) },
		"Free":      func() { m.Free(ZeroPPN) },
		"CopyPage":  func() { m.CopyPage(ZeroPPN, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s to zero page did not panic", name)
				}
			}()
			fn()
		}()
	}
	if m.Read(ZeroPPN, 123) != 0 || !m.PageIsZero(ZeroPPN) {
		t.Fatal("zero page must read as zero")
	}
}

func TestLineReadWrite(t *testing.T) {
	m := New(4)
	ppn, _ := m.Alloc()
	src := make([]byte, arch.LineSize)
	for i := range src {
		src[i] = byte(i + 1)
	}
	m.WriteLine(ppn, 17, src)
	dst := make([]byte, arch.LineSize)
	m.ReadLine(ppn, 17, dst)
	if !bytes.Equal(src, dst) {
		t.Fatal("line round trip failed")
	}
	m.ReadLine(ppn, 16, dst)
	for _, b := range dst {
		if b != 0 {
			t.Fatal("neighbouring line dirtied")
		}
	}
}

func TestReadWrite64RoundTrip(t *testing.T) {
	m := New(4)
	ppn, _ := m.Alloc()
	m.Write64(ppn, 40, 0xdeadbeefcafef00d)
	if got := m.Read64(ppn, 40); got != 0xdeadbeefcafef00d {
		t.Fatalf("Read64 = %#x", got)
	}
	if got := m.Read64(ppn, 48); got != 0 {
		t.Fatalf("adjacent word dirtied: %#x", got)
	}
}

func TestRead64CrossPagePanics(t *testing.T) {
	m := New(4)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.Read64(1, arch.PageSize-4)
}

func TestCopyPage(t *testing.T) {
	m := New(6)
	src, _ := m.Alloc()
	dst, _ := m.Alloc()
	m.Write(src, 5, 0x11)
	m.Write(dst, 9, 0x22)
	m.CopyPage(dst, src)
	if m.Read(dst, 5) != 0x11 {
		t.Fatal("copy missed data")
	}
	if m.Read(dst, 9) != 0 {
		t.Fatal("copy did not overwrite destination")
	}
	// Copying a never-written (zero) frame must clear the destination.
	empty, _ := m.Alloc()
	m.CopyPage(dst, empty)
	if !m.PageIsZero(dst) {
		t.Fatal("copying zero frame should zero destination")
	}
}

func TestPageIsZero(t *testing.T) {
	m := New(4)
	ppn, _ := m.Alloc()
	if !m.PageIsZero(ppn) {
		t.Fatal("fresh frame should be zero")
	}
	m.Write(ppn, arch.PageSize-1, 1)
	if m.PageIsZero(ppn) {
		t.Fatal("dirty frame reported zero")
	}
}

func TestByteRoundTripProperty(t *testing.T) {
	m := New(16)
	ppn, _ := m.Alloc()
	f := func(off uint16, v byte) bool {
		o := uint64(off) % arch.PageSize
		m.Write(ppn, o, v)
		return m.Read(ppn, o) == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(3))}); err != nil {
		t.Error(err)
	}
}

func TestAllocUniqueProperty(t *testing.T) {
	// Property: live frames handed out by Alloc are always distinct.
	m := New(1024)
	seen := make(map[arch.PPN]bool)
	rng := rand.New(rand.NewSource(4))
	var live []arch.PPN
	for i := 0; i < 2000; i++ {
		if len(live) > 0 && rng.Intn(3) == 0 {
			k := rng.Intn(len(live))
			m.Free(live[k])
			delete(seen, live[k])
			live = append(live[:k], live[k+1:]...)
			continue
		}
		ppn, err := m.Alloc()
		if err != nil {
			continue
		}
		if seen[ppn] {
			t.Fatalf("frame %#x handed out twice", uint64(ppn))
		}
		seen[ppn] = true
		live = append(live, ppn)
	}
}
