package mem

import (
	"testing"

	"repro/internal/arch"
)

func TestSnapshotForkSharesUntilWrite(t *testing.T) {
	m := New(8)
	ppn, err := m.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	m.Write(ppn, 0, 0xAA)

	snap := m.Snapshot()
	fork := NewFromSnapshot(snap)

	if got := fork.Read(ppn, 0); got != 0xAA {
		t.Fatalf("fork reads %#x, want 0xAA", got)
	}
	if fork.BytesCopied() != 0 {
		t.Fatalf("reading materialised %d bytes, want 0", fork.BytesCopied())
	}
	if fork.AllocatedPages() != m.AllocatedPages() || fork.TotalPages() != m.TotalPages() {
		t.Fatal("fork allocator state diverges from parent")
	}

	// First write privatises exactly one frame; parent is untouched.
	fork.Write(ppn, 1, 0xBB)
	if fork.BytesCopied() != arch.PageSize {
		t.Fatalf("BytesCopied = %d, want %d", fork.BytesCopied(), arch.PageSize)
	}
	if got := m.Read(ppn, 1); got != 0 {
		t.Fatalf("fork write leaked into parent: %#x", got)
	}
	if got := fork.Read(ppn, 0); got != 0xAA {
		t.Fatalf("privatised frame lost shared contents: %#x", got)
	}

	// Subsequent writes to the same frame copy nothing more.
	fork.Write(ppn, 2, 0xCC)
	if fork.BytesCopied() != arch.PageSize {
		t.Fatalf("second write re-copied: BytesCopied = %d", fork.BytesCopied())
	}
}

func TestSnapshotImmutableUnderParentWrites(t *testing.T) {
	m := New(8)
	ppn, _ := m.Alloc()
	m.Write(ppn, 0, 1)

	snap := m.Snapshot()
	// The parent keeps running: its own frames turned copy-on-write at
	// capture, so this write must privatise, not mutate the shared array.
	m.Write(ppn, 0, 2)
	if m.BytesCopied() != arch.PageSize {
		t.Fatalf("parent write after snapshot copied %d bytes, want %d", m.BytesCopied(), arch.PageSize)
	}

	fork := NewFromSnapshot(snap)
	if got := fork.Read(ppn, 0); got != 1 {
		t.Fatalf("late fork sees parent's post-snapshot write: %d", got)
	}
}

func TestForksOfOneSnapshotAreIndependent(t *testing.T) {
	m := New(8)
	ppn, _ := m.Alloc()
	m.Write(ppn, 0, 7)
	snap := m.Snapshot()

	a, b := NewFromSnapshot(snap), NewFromSnapshot(snap)
	a.Write(ppn, 0, 8)
	if got := b.Read(ppn, 0); got != 7 {
		t.Fatalf("sibling fork sees the other's write: %d", got)
	}
	b.Write(ppn, 0, 9)
	if got := a.Read(ppn, 0); got != 8 {
		t.Fatalf("fork lost its own write: %d", got)
	}
}

func TestAllocRecycleClearsSharedBit(t *testing.T) {
	m := New(8)
	ppn, _ := m.Alloc()
	m.Write(ppn, 0, 5)
	snap := m.Snapshot()

	fork := NewFromSnapshot(snap)
	fork.Free(ppn)
	re, err := fork.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	if re != ppn {
		t.Fatalf("free list recycled %d, want %d", re, ppn)
	}
	// The recycled frame reads as zero and writing it must not copy the
	// old shared contents (the pointer was replaced, not the array).
	if got := fork.Read(re, 0); got != 0 {
		t.Fatalf("recycled frame not zeroed: %d", got)
	}
	fork.Write(re, 0, 6)
	if fork.BytesCopied() != 0 {
		t.Fatalf("write to recycled frame copied %d bytes, want 0", fork.BytesCopied())
	}
	// The snapshot's view is unharmed.
	if got := NewFromSnapshot(snap).Read(ppn, 0); got != 5 {
		t.Fatalf("recycling mutated the snapshot: %d", got)
	}
}
