package mem

// Snapshot/fork support: a Memory can be captured into an immutable
// Snapshot and any number of Memories forked from it. Forks share the
// parent's frame arrays read-only and copy a 4 KB frame only on the
// first materialising write (overlay-style dirty tracking applied to
// the simulator itself); BytesCopied reports how much each fork ended
// up privatising. Capturing a snapshot also marks the parent's own
// frames copy-on-write, so the snapshot stays immutable even if the
// parent keeps running.

import "repro/internal/arch"

// Snapshot is an immutable capture of a Memory's full state. It is safe
// to fork from one snapshot concurrently: the shared frame arrays are
// never written after capture.
type Snapshot struct {
	frames     []*[arch.PageSize]byte
	totalPages int
	nextFree   arch.PPN
	freeList   []arch.PPN
	allocated  []bool
	allocCount int
}

// TotalPages returns the captured capacity in frames.
func (s *Snapshot) TotalPages() int { return s.totalPages }

// SharedBytes returns the bytes of materialised frame data the snapshot
// references (an upper bound on what one fork could end up copying).
func (s *Snapshot) SharedBytes() uint64 {
	var n uint64
	for _, f := range s.frames {
		if f != nil {
			n += arch.PageSize
		}
	}
	return n
}

// markAllShared flags every materialised frame as snapshot-shared.
func (m *Memory) markAllShared() {
	if m.shared == nil {
		m.shared = make([]uint64, (m.totalPages+63)/64)
	}
	for ppn, f := range m.frames {
		if f != nil {
			m.shared[ppn>>6] |= 1 << (uint(ppn) & 63)
		}
	}
}

// Snapshot captures the memory. The parent's materialised frames become
// copy-on-write too, so later parent writes cannot leak into the
// snapshot (or into forks taken from it).
func (m *Memory) Snapshot() *Snapshot {
	s := &Snapshot{
		frames:     append([]*[arch.PageSize]byte(nil), m.frames...),
		totalPages: m.totalPages,
		nextFree:   m.nextFree,
		freeList:   append([]arch.PPN(nil), m.freeList...),
		allocated:  append([]bool(nil), m.allocated...),
		allocCount: m.allocCount,
	}
	m.markAllShared()
	return s
}

// NewFromSnapshot forks a Memory from the snapshot: identical contents
// and allocator state, with every materialised frame shared
// copy-on-write. The fork's BytesCopied starts at zero.
func NewFromSnapshot(s *Snapshot) *Memory {
	m := &Memory{
		frames:     append([]*[arch.PageSize]byte(nil), s.frames...),
		totalPages: s.totalPages,
		nextFree:   s.nextFree,
		freeList:   append([]arch.PPN(nil), s.freeList...),
		allocated:  append([]bool(nil), s.allocated...),
		allocCount: s.allocCount,
	}
	m.markAllShared()
	return m
}

// BytesCopied returns the bytes privatised by copy-on-write
// materialisation since this Memory was forked (always 0 for a Memory
// that was never forked or snapshotted, or that has not written to a
// shared frame).
func (m *Memory) BytesCopied() uint64 { return m.bytesCopied }
