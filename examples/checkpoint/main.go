// Checkpoint: overlay-based incremental checkpointing (§5.3.2). A
// long-running computation checkpoints its state every interval; updates
// between checkpoints collect in page overlays, so each checkpoint writes
// only the modified cache lines to the backing store — not the modified
// pages — and any checkpoint can be restored later.
package main

import (
	"fmt"
	"log"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/techniques/checkpoint"
)

const pages = 128

func main() {
	f, err := core.New(core.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	p := f.VM.NewProcess()
	if err := f.VM.MapAnon(p, 0, pages); err != nil {
		log.Fatal(err)
	}
	// Initial state: a counter in every page.
	for pg := 0; pg < pages; pg++ {
		f.Store64(p.PID, arch.VirtAddr(pg)*arch.PageSize, 0)
	}

	ck := checkpoint.New(f, p, 0, pages)
	if err := ck.Begin(); err != nil {
		log.Fatal(err)
	}

	fmt.Println("interval  dirty-lines  overlay-bytes  page-granularity-bytes  saving")
	var totalDelta, totalPage int
	for interval := 1; interval <= 4; interval++ {
		// The "computation": bump a few counters — interval² pages, one
		// line each, the sparse-update pattern HPC checkpointing sees.
		for pg := 0; pg < interval*interval*4; pg++ {
			va := arch.VirtAddr(pg%pages)*arch.PageSize + arch.VirtAddr((pg%arch.LinesPerPage)*arch.LineSize)
			v, _ := f.Load64(p.PID, va)
			f.Store64(p.PID, va, v+1)
		}
		cp, err := ck.Take()
		if err != nil {
			log.Fatal(err)
		}
		totalDelta += cp.Bytes()
		totalPage += cp.FullPageBytes()
		fmt.Printf("%8d %12d %14d %23d %6.1fx\n",
			interval, len(cp.Deltas), cp.Bytes(), cp.FullPageBytes(),
			float64(cp.FullPageBytes())/float64(max(cp.Bytes(), 1)))
	}
	fmt.Printf("\ntotal backing-store writes: %d KB vs %d KB at page granularity\n",
		totalDelta>>10, totalPage>>10)

	// Disaster strikes: roll back to checkpoint 2.
	if err := ck.RestoreTo(2); err != nil {
		log.Fatal(err)
	}
	v, _ := f.Load64(p.PID, 0)
	fmt.Printf("after RestoreTo(2), counter[0] = %d (state as of interval 2)\n", v)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
