// SpMV: build a sparse matrix, store it three ways — dense, CSR, and the
// paper's overlay representation (§5.2) — verify they all compute the
// same y = M·x, then simulate one iteration of each to compare cycles and
// memory. Finishes with the dynamic-update contrast: inserting a non-zero
// into the overlay matrix is one overlaying write; CSR must shift arrays.
package main

import (
	"fmt"
	"log"
	"math"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/sparse"
	"repro/internal/vm"
)

func main() {
	m := sparse.Random("demo", 2048, 2048, 24000, 6.0, 42)
	fmt.Printf("matrix %q: %dx%d, %d non-zeros, L = %.2f\n",
		m.Name, m.Rows, m.Cols, m.NNZ(), m.L())

	x := make([]float64, m.Cols)
	for i := range x {
		x[i] = float64(i%13) - 6
	}
	want := m.MultiplyDense(x)

	// CSR.
	csr := sparse.NewCSR(m)
	if !equal(want, csr.Multiply(x)) {
		log.Fatal("CSR result mismatch")
	}

	// Overlay representation: every matrix page maps to the zero page;
	// non-zero lines live in overlays.
	cfg := core.DefaultConfig()
	f, err := core.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	proc := f.VM.NewProcess()
	o, layout, err := sparse.MapOverlay(f, proc, m)
	if err != nil {
		log.Fatal(err)
	}
	got, err := o.Multiply(x)
	if err != nil {
		log.Fatal(err)
	}
	if !equal(want, got) {
		log.Fatal("overlay result mismatch")
	}
	fmt.Println("dense, CSR and overlay SpMV all agree")

	fmt.Printf("\nmemory: dense %d KB | CSR %d KB | overlay %d KB data (%d KB with segment rounding)\n",
		m.DenseBytes()>>10, csr.MemoryBytes()>>10, o.LineBytes()>>10, o.MemoryBytes()>>10)

	// Timed run: overlay representation.
	trace, err := sparse.OverlayTrace(o, layout)
	if err != nil {
		log.Fatal(err)
	}
	overlayCycles := simulate(f, proc, trace)

	// Timed run: CSR, on a fresh machine.
	f2, _ := core.New(cfg)
	proc2 := f2.VM.NewProcess()
	layout2, err := sparse.MapCSR(f2, proc2, csr)
	if err != nil {
		log.Fatal(err)
	}
	csrCycles := simulate(f2, proc2, sparse.CSRTrace(csr, layout2))

	fmt.Printf("one SpMV iteration: overlay %d cycles, CSR %d cycles (overlay %.2fx)\n",
		overlayCycles, csrCycles, float64(csrCycles)/float64(overlayCycles))

	// Dynamic update: one store vs an O(nnz) array shift.
	if err := o.Insert(100, 200, 3.5); err != nil {
		log.Fatal(err)
	}
	csr.Insert(100, 200, 3.5)
	v, _ := o.At(100, 200)
	fmt.Printf("dynamic insert: overlay matrix now has %d non-zero lines, element = %v\n",
		m.NNZBlocks(64)+1, v)
}

func simulate(f *core.Framework, proc *vm.Process, trace cpu.Trace) uint64 {
	port := f.NewPort()
	c := cpu.New(f.Engine, port, proc.PID, trace)
	c.Run(0, nil)
	f.Engine.Run()
	return uint64(c.Cycles())
}

func equal(a, b []float64) bool {
	for i := range a {
		if math.Abs(a[i]-b[i]) > 1e-9 {
			return false
		}
	}
	return true
}
