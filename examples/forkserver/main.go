// Forkserver: the paper's headline use case (§5.1). A "server" process
// periodically checkpoints itself with fork; the parent keeps mutating
// its heap. Conventional copy-on-write copies a full page per first
// touch; overlay-on-write moves single cache lines into overlays. The
// example runs the same write pattern under both mechanisms and compares
// added memory and simulated cycles.
package main

import (
	"fmt"
	"log"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/vm"
)

const (
	heapPages     = 256
	linesPerPage  = 3 // sparse update pattern (Type 3-like)
	checkpoints   = 4
	writesPerSnap = heapPages * linesPerPage
)

func main() {
	fmt.Println("mechanism        added-memory   cycles    (4 checkpoints, sparse heap updates)")
	for _, overlay := range []bool{false, true} {
		added, cycles := run(overlay)
		name := "copy-on-write"
		if overlay {
			name = "overlay-on-write"
		}
		fmt.Printf("%-16s %9d KB %10d\n", name, added>>10, cycles)
	}
}

func run(overlayMode bool) (addedBytes int, cycles uint64) {
	cfg := core.DefaultConfig()
	f, err := core.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	server := f.VM.NewProcess()
	if err := f.VM.MapAnon(server, 0, heapPages); err != nil {
		log.Fatal(err)
	}
	// Populate the heap.
	for p := 0; p < heapPages; p++ {
		f.Store(server.PID, arch.VirtAddr(p)*arch.PageSize, []byte{byte(p)})
	}

	port := f.NewPort()
	framesBefore := f.Mem.AllocatedPages()
	omsBefore := f.OMS.BytesInUse()
	omsFramesBefore := f.OMS.FramesOwned()
	start := f.Engine.Now()

	var snapshots []*vm.Process
	for snap := 0; snap < checkpoints; snap++ {
		child := f.Fork(server, overlayMode)
		snapshots = append(snapshots, child)

		// The server keeps running: touch a few lines of every page.
		pending := 0
		for w := 0; w < writesPerSnap; w++ {
			page := w % heapPages
			line := (w/heapPages*17 + snap) % arch.LinesPerPage
			va := arch.VirtAddr(page)*arch.PageSize + arch.VirtAddr(line*arch.LineSize)
			pending++
			port.Write(server.PID, va, func() { pending-- })
		}
		f.Engine.Run()
		if pending != 0 {
			log.Fatal("writes did not drain")
		}
	}

	// Snapshots still see their fork-time bytes.
	var b [1]byte
	f.Load(snapshots[0].PID, 0, b[:])
	if b[0] != 0 {
		log.Fatalf("snapshot corrupted: %d", b[0])
	}

	regular := f.Mem.AllocatedPages() - framesBefore - (f.OMS.FramesOwned() - omsFramesBefore)
	addedBytes = regular*arch.PageSize + f.OMS.BytesInUse() - omsBefore
	return addedBytes, uint64(f.Engine.Now() - start)
}
