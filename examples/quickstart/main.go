// Quickstart: build an overlay-enabled memory system, fork a process in
// overlay-on-write mode, and watch a write create a one-line overlay
// instead of a full page copy.
package main

import (
	"fmt"
	"log"

	"repro/internal/arch"
	"repro/internal/core"
)

func main() {
	// Assemble the Table 2 system (caches, TLBs, DDR3, OMT, OMS).
	f, err := core.New(core.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	// A process with one page of data.
	parent := f.VM.NewProcess()
	if err := f.VM.MapAnon(parent, 0, 1); err != nil {
		log.Fatal(err)
	}
	if err := f.Store(parent.PID, 0, []byte("hello, page overlays")); err != nil {
		log.Fatal(err)
	}

	// Fork with overlay-on-write (the paper's replacement for
	// copy-on-write). No memory is copied.
	child := f.Fork(parent, true)
	before := f.Mem.AllocatedPages()

	// The parent writes one byte. Conventional COW would copy 4 KB; the
	// overlay framework moves one 64 B cache line into an overlay.
	if err := f.Store(parent.PID, 0, []byte("H")); err != nil {
		log.Fatal(err)
	}

	obits, segBytes := f.OverlayInfo(parent.PID, 0)
	fmt.Printf("frames allocated by the write: %d\n", f.Mem.AllocatedPages()-before)
	fmt.Printf("parent overlay: %d line(s) in a %d B segment (OBitVector %s...)\n",
		obits.Count(), segBytes, obits.String()[56:])

	// Both processes see their own data.
	buf := make([]byte, 20)
	f.Load(parent.PID, 0, buf)
	fmt.Printf("parent reads: %q\n", buf)
	f.Load(child.PID, 0, buf)
	fmt.Printf("child reads:  %q\n", buf)

	// Promote the overlay back to a regular page when it outlives its use.
	if err := f.Promote(parent, 0, core.CopyAndCommit); err != nil {
		log.Fatal(err)
	}
	obits, segBytes = f.OverlayInfo(parent.PID, 0)
	fmt.Printf("after copy-and-commit: %d overlay lines, %d B segment\n", obits.Count(), segBytes)

	// Timed accesses run through the full TLB/cache/DRAM model.
	port := f.NewPort()
	start := f.Engine.Now()
	port.Read(parent.PID, arch.VirtAddr(0), func() {
		fmt.Printf("timed read completed in %d cycles\n", f.Engine.Now()-start)
	})
	f.Engine.Run()
}
