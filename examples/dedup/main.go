// Dedup: fine-grained memory deduplication across virtual machines
// (§5.3.1). Two "guest" processes boot from the same image; their pages
// differ in a handful of cache lines. The deduplicator folds each
// near-duplicate page onto a shared base page, keeping the differences in
// overlays — and the guests keep read/write access throughout.
package main

import (
	"fmt"
	"log"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/techniques/dedup"
	"repro/internal/vm"
)

const imagePages = 64

func main() {
	f, err := core.New(core.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	// Two guests with mostly identical memory images.
	guestA := bootGuest(f, 0xA0)
	guestB := bootGuest(f, 0xA0)
	// Guest B diverges slightly: one config line per 8 pages.
	for p := 0; p < imagePages; p += 8 {
		va := arch.VirtAddr(p)*arch.PageSize + 5*arch.LineSize
		if err := f.Store(guestB.PID, va, []byte("guest-b-config")); err != nil {
			log.Fatal(err)
		}
	}

	before := f.Mem.AllocatedPages()
	d := dedup.New(f, 16)
	var pages []dedup.Page
	for p := 0; p < imagePages; p++ {
		pages = append(pages, dedup.Page{Proc: guestA, VPN: arch.VPN(p)})
		pages = append(pages, dedup.Page{Proc: guestB, VPN: arch.VPN(p)})
	}
	folds, err := d.ScanAndFold(pages)
	if err != nil {
		log.Fatal(err)
	}
	freed := before - f.Mem.AllocatedPages()
	fmt.Printf("folded %d of %d pages, freed %d frames (%d KB), overlays hold %d KB of diffs\n",
		folds, len(pages), freed, freed*4, f.OMS.BytesInUse()>>10)

	// Guests still see their own data...
	var b [14]byte
	f.Load(guestB.PID, 5*arch.LineSize, b[:])
	fmt.Printf("guest B reads its diverged line: %q\n", b)
	f.Load(guestA.PID, 5*arch.LineSize, b[:])
	fmt.Printf("guest A reads the shared line:   %#x...\n", b[0])

	// ...and can keep writing: divergence happens at line granularity.
	if err := f.Store(guestA.PID, 0, []byte{0xEE}); err != nil {
		log.Fatal(err)
	}
	f.Load(guestB.PID, 0, b[:1])
	fmt.Printf("after guest A writes, guest B still sees %#x (isolated at 64B granularity)\n", b[0])
}

func bootGuest(f *core.Framework, fill byte) *vm.Process {
	g := f.VM.NewProcess()
	if err := f.VM.MapAnon(g, 0, imagePages); err != nil {
		log.Fatal(err)
	}
	buf := make([]byte, arch.PageSize)
	for i := range buf {
		buf[i] = fill
	}
	for p := 0; p < imagePages; p++ {
		if err := f.Store(g.PID, arch.VirtAddr(p)*arch.PageSize, buf); err != nil {
			log.Fatal(err)
		}
	}
	return g
}
