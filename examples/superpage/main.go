// Superpage: flexible super-pages (§5.3.5). A 2 MB super-page is shared
// copy-on-write between two processes — something conventional systems
// cannot do without shattering it into 512 base pages. Writes divert one
// 4 KB segment at a time, and the TLB keeps covering the region with a
// single entry plus the handful of diverged segments.
package main

import (
	"fmt"
	"log"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/techniques/superpage"
)

func main() {
	f, err := core.New(core.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	owner := f.VM.NewProcess()
	sp, err := superpage.Alloc(f, owner, 0)
	if err != nil {
		log.Fatal(err)
	}
	// Populate a few segments.
	for seg := 0; seg < 8; seg++ {
		if err := sp.Write(owner, arch.VirtAddr(seg)*arch.PageSize, []byte{byte('A' + seg)}); err != nil {
			log.Fatal(err)
		}
	}

	// Share the whole 2 MB region copy-on-write with a second process.
	clone := f.VM.NewProcess()
	if err := sp.Share(clone); err != nil {
		log.Fatal(err)
	}
	framesBefore := f.Mem.AllocatedPages()

	// The clone diverges three segments.
	for _, seg := range []int{0, 100, 511} {
		if err := sp.Write(clone, arch.VirtAddr(seg)*arch.PageSize, []byte{'x'}); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("clone diverged %d segments; frames copied: %d of %d (%.1f%% of 2 MB)\n",
		sp.DivertedSegments(clone), f.Mem.AllocatedPages()-framesBefore,
		superpage.SegmentsPerSuperPage,
		100*float64(f.Mem.AllocatedPages()-framesBefore)/superpage.SegmentsPerSuperPage)

	var b [1]byte
	sp.Read(owner, 0, b[:])
	fmt.Printf("owner still reads %q; ", b)
	sp.Read(clone, 0, b[:])
	fmt.Printf("clone reads %q\n", b)

	fmt.Printf("TLB entries needed — owner: %d, clone: %d (a shattered mapping would need %d)\n",
		sp.EntriesNeeded(owner), sp.EntriesNeeded(clone), superpage.SegmentsPerSuperPage)

	// Protection domains inside one super-page.
	if err := sp.ProtectSegment(owner, 5); err != nil {
		log.Fatal(err)
	}
	if err := f.Store(owner.PID, 5*arch.PageSize, []byte{1}); err != nil {
		fmt.Printf("write to protected segment 5 correctly faulted: %v\n", err)
	}
}
