// Speculation: virtualising speculative execution with overlays (§5.3.3).
// A transaction buffers its writes in page overlays — far more state than
// any cache-resident transactional memory could hold — then commits or
// aborts via the framework's promotion actions.
package main

import (
	"fmt"
	"log"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/techniques/speculation"
)

func main() {
	f, err := core.New(core.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	p := f.VM.NewProcess()
	const pages = 64
	if err := f.VM.MapAnon(p, 0, pages); err != nil {
		log.Fatal(err)
	}
	// Committed state: account balances, all 100.
	for i := 0; i < pages*arch.PageSize/8; i++ {
		f.Store64(p.PID, arch.VirtAddr(i*8), 100)
	}
	vpns := make([]arch.VPN, pages)
	for i := range vpns {
		vpns[i] = arch.VPN(i)
	}

	// Transaction 1: a huge transfer batch — every page is touched, far
	// beyond what a cache-bounded HTM could buffer. Then it fails.
	tx, err := speculation.Begin(f, p, vpns)
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < pages*64; i++ { // one write per cache line
		f.Store64(p.PID, arch.VirtAddr(i*arch.LineSize), 0)
	}
	fmt.Printf("tx1 buffered %d speculative cache lines (%d KB in the Overlay Memory Store)\n",
		tx.SpeculativeLines(), f.OMS.BytesInUse()>>10)
	if err := tx.Abort(); err != nil {
		log.Fatal(err)
	}
	v, _ := f.Load64(p.PID, 0)
	fmt.Printf("after abort, balance[0] = %d (rolled back)\n", v)

	// Transaction 2: a small transfer that commits.
	tx2, err := speculation.Begin(f, p, vpns)
	if err != nil {
		log.Fatal(err)
	}
	a, _ := f.Load64(p.PID, 0)
	b, _ := f.Load64(p.PID, 8)
	f.Store64(p.PID, 0, a-30)
	f.Store64(p.PID, 8, b+30)
	if err := tx2.Commit(); err != nil {
		log.Fatal(err)
	}
	a, _ = f.Load64(p.PID, 0)
	b, _ = f.Load64(p.PID, 8)
	fmt.Printf("after commit, balances = %d, %d (transferred 30)\n", a, b)
	fmt.Printf("overlay store in use after commit: %d B (all speculative state released)\n",
		f.OMS.BytesInUse())
}
