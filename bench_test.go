// Package repro's root benchmark harness: one testing.B benchmark per
// table and figure of the paper's evaluation (§5), plus ablation benches
// for the design choices DESIGN.md calls out. The benchmarks report the
// paper's headline metrics via b.ReportMetric, so
//
//	go test -bench=. -benchmem
//
// regenerates a compact, comparable version of every result. The
// full-size sweeps live behind `overlaysim` (see README).
package repro

import (
	"context"
	"io"
	"testing"

	"fmt"
	"repro/internal/arch"
	"repro/internal/cache"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/exp"
	"repro/internal/sim"
	"repro/internal/sparse"
	"repro/internal/system"
	"repro/internal/techniques/checkpoint"
	"repro/internal/techniques/dedup"
	"repro/internal/techniques/speculation"
	"repro/internal/workload"
)

// BenchmarkTable2Config measures system construction (the full Table 2
// machine: caches, TLBs, DRAM, OMT, OMS) and prints nothing.
func BenchmarkTable2Config(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f, err := core.New(system.Default())
		if err != nil {
			b.Fatal(err)
		}
		system.Describe(io.Discard, f.Config)
	}
}

// forkPair runs one benchmark under both mechanisms at bench scale.
func forkPair(b *testing.B, name string) exp.ForkResult {
	b.Helper()
	spec, err := workload.ByName(name)
	if err != nil {
		b.Fatal(err)
	}
	r, err := exp.RunForkBenchmark(context.Background(), spec, exp.QuickForkParams())
	if err != nil {
		b.Fatal(err)
	}
	return r
}

// BenchmarkFigure8ForkMemory regenerates Figure 8's comparison for one
// representative benchmark per write-working-set type, reporting the
// memory reduction overlay-on-write achieves over copy-on-write.
func BenchmarkFigure8ForkMemory(b *testing.B) {
	for _, name := range []string{"hmmer", "lbm", "mcf"} {
		b.Run(name, func(b *testing.B) {
			var reduction float64
			for i := 0; i < b.N; i++ {
				r := forkPair(b, name)
				reduction = r.MemoryReduction()
			}
			b.ReportMetric(100*reduction, "%mem-reduction")
		})
	}
}

// BenchmarkFigure9ForkCPI regenerates Figure 9's CPI comparison,
// reporting the overlay-on-write speedup.
func BenchmarkFigure9ForkCPI(b *testing.B) {
	for _, name := range []string{"hmmer", "cactus", "lbm", "mcf"} {
		b.Run(name, func(b *testing.B) {
			var speedup float64
			for i := 0; i < b.N; i++ {
				r := forkPair(b, name)
				speedup = r.Speedup()
			}
			b.ReportMetric(100*(speedup-1), "%speedup")
		})
	}
}

// BenchmarkFigure10SpMV regenerates Figure 10 at three points of the L
// axis (the two extremes plus the crossover region), reporting overlay
// performance and memory relative to CSR.
func BenchmarkFigure10SpMV(b *testing.B) {
	specs := sparse.SuiteSpecs()
	picks := map[string]sparse.SuiteSpec{
		"lowL":  specs[0],
		"midL":  specs[sparse.SuiteSize/2],
		"highL": specs[sparse.SuiteSize-1],
	}
	for label, spec := range picks {
		spec := spec
		b.Run(label, func(b *testing.B) {
			var r exp.SpMVResult
			for i := 0; i < b.N; i++ {
				m := spec.Build()
				var err error
				r, err = exp.RunSpMV(m, false)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(r.RelPerf(), "x-perf-vs-csr")
			b.ReportMetric(r.RelMem(), "x-mem-vs-csr")
			b.ReportMetric(r.L, "L")
		})
	}
}

// BenchmarkFigure11LineSize regenerates Figure 11 (analytic), reporting
// the mean page-granularity overhead over ideal (the paper's 53×).
func BenchmarkFigure11LineSize(b *testing.B) {
	var mean4k float64
	for i := 0; i < b.N; i++ {
		results := exp.RunFigure11(12)
		sum := 0.0
		for _, r := range results {
			sum += r.Overheads[4096]
		}
		mean4k = sum / float64(len(results))
	}
	b.ReportMetric(mean4k, "x-4KB-overhead-vs-ideal")
}

// BenchmarkSparsitySweepVsDense regenerates the §5.2 in-text sweep,
// reporting the overlay speedup over the dense representation at the
// sparsest point.
func BenchmarkSparsitySweepVsDense(b *testing.B) {
	var speedup float64
	for i := 0; i < b.N; i++ {
		results, err := exp.RunSparsitySweep(4, 128)
		if err != nil {
			b.Fatal(err)
		}
		speedup = results[len(results)-1].Speedup()
	}
	b.ReportMetric(speedup, "x-vs-dense-at-max-sparsity")
}

// --- Table 1 techniques -------------------------------------------------

func newBenchFW(b *testing.B) *core.Framework {
	b.Helper()
	cfg := core.DefaultConfig()
	cfg.MemoryPages = 8192
	f, err := core.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return f
}

// BenchmarkTable1OverlayOnWrite measures a single overlaying write (the
// §2.2 primitive) end to end, against the conventional COW page fault.
func BenchmarkTable1OverlayOnWrite(b *testing.B) {
	for _, overlay := range []bool{true, false} {
		name := "overlay"
		if !overlay {
			name = "cow"
		}
		b.Run(name, func(b *testing.B) {
			var cycles sim.Cycle
			for i := 0; i < b.N; i++ {
				f := newBenchFW(b)
				parent := f.VM.NewProcess()
				if err := f.VM.MapAnon(parent, 0, 1); err != nil {
					b.Fatal(err)
				}
				f.Fork(parent, overlay)
				port := f.NewPort()
				start := f.Engine.Now()
				port.Write(parent.PID, 0, nil)
				f.Engine.Run()
				cycles = f.Engine.Now() - start
			}
			b.ReportMetric(float64(cycles), "cycles/first-write")
		})
	}
}

// BenchmarkTable1Dedup measures folding a near-duplicate page.
func BenchmarkTable1Dedup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f := newBenchFW(b)
		p := f.VM.NewProcess()
		if err := f.VM.MapAnon(p, 0, 2); err != nil {
			b.Fatal(err)
		}
		buf := make([]byte, arch.PageSize)
		for j := range buf {
			buf[j] = 7
		}
		f.Store(p.PID, 0, buf)
		buf[100] = 9
		f.Store(p.PID, arch.PageSize, buf)
		d := dedup.New(f, 8)
		ok, err := d.Fold(dedup.Page{Proc: p, VPN: 0}, dedup.Page{Proc: p, VPN: 1})
		if err != nil || !ok {
			b.Fatalf("fold: %v %v", ok, err)
		}
	}
}

// BenchmarkTable1Checkpoint measures one overlay checkpoint of a region
// with a sparse dirty set, reporting the bandwidth saving over
// page-granularity checkpointing.
func BenchmarkTable1Checkpoint(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		f := newBenchFW(b)
		p := f.VM.NewProcess()
		if err := f.VM.MapAnon(p, 0, 64); err != nil {
			b.Fatal(err)
		}
		c := checkpoint.New(f, p, 0, 64)
		if err := c.Begin(); err != nil {
			b.Fatal(err)
		}
		for pg := 0; pg < 64; pg++ {
			f.Store(p.PID, arch.VirtAddr(pg)*arch.PageSize, []byte{1})
		}
		cp, err := c.Take()
		if err != nil {
			b.Fatal(err)
		}
		ratio = float64(cp.FullPageBytes()) / float64(cp.Bytes())
	}
	b.ReportMetric(ratio, "x-bandwidth-saved")
}

// BenchmarkTable1Speculation measures begin/commit of an overlay-buffered
// speculative region.
func BenchmarkTable1Speculation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f := newBenchFW(b)
		p := f.VM.NewProcess()
		if err := f.VM.MapAnon(p, 0, 8); err != nil {
			b.Fatal(err)
		}
		vpns := []arch.VPN{0, 1, 2, 3, 4, 5, 6, 7}
		r, err := speculation.Begin(f, p, vpns)
		if err != nil {
			b.Fatal(err)
		}
		for l := 0; l < 8*arch.LinesPerPage; l++ {
			f.Store(p.PID, arch.VirtAddr(l*arch.LineSize), []byte{1})
		}
		if err := r.Commit(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablations -----------------------------------------------------------

// BenchmarkAblationOverlayPrefetch compares the overlay SpMV with and
// without the OBitVector-walking prefetcher (Prefetch.Distance = 0) on a
// suite matrix whose overlay lines scatter across pages — the case where
// the walker, not the instruction window, must supply the lookahead.
func BenchmarkAblationOverlayPrefetch(b *testing.B) {
	spec := sparse.SuiteSpecs()[sparse.SuiteSize/2]
	for _, on := range []bool{true, false} {
		name := "on"
		if !on {
			name = "off"
		}
		b.Run(name, func(b *testing.B) {
			var cycles uint64
			for i := 0; i < b.N; i++ {
				m := spec.Build()
				cfg := core.DefaultConfig()
				cfg.MemoryPages = m.DenseBytes()/arch.PageSize + 16384
				if !on {
					cfg.Prefetch.Distance = 0
					cfg.Prefetch.Degree = 0
				}
				c, err := runOverlaySpMV(cfg, m)
				if err != nil {
					b.Fatal(err)
				}
				cycles = c
			}
			b.ReportMetric(float64(cycles), "cycles/iter")
		})
	}
}

// BenchmarkAblationRemapVsShootdown sweeps the single-line remap cost
// from the coherence-based update (50 cycles) up to a full shootdown
// (4000 cycles), quantifying §4.3.3's coherence optimisation.
func BenchmarkAblationRemapVsShootdown(b *testing.B) {
	for _, c := range []struct {
		name  string
		remap sim.Cycle
	}{{"coherence-update", 50}, {"full-shootdown", 4000}} {
		b.Run(c.name, func(b *testing.B) {
			var cpi float64
			for i := 0; i < b.N; i++ {
				spec, err := workload.ByName("mcf")
				if err != nil {
					b.Fatal(err)
				}
				cfg := core.DefaultConfig()
				cfg.MemoryPages = spec.Pages*2 + 16384
				cfg.OverlayRemapLatency = c.remap
				cpi, err = exp.RunForkCPI(spec, cfg, exp.QuickForkParams(), true)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(cpi, "cpi")
		})
	}
}

// BenchmarkAblationL3Replacement compares DRRIP (Table 2) against plain
// LRU at the L3 on a streaming, cache-thrashing fork benchmark — the
// scan-resistance DRRIP was designed for.
func BenchmarkAblationL3Replacement(b *testing.B) {
	for _, drrip := range []bool{true, false} {
		name := "drrip"
		if !drrip {
			name = "lru"
		}
		b.Run(name, func(b *testing.B) {
			var cpi float64
			for i := 0; i < b.N; i++ {
				spec, err := workload.ByName("lbm")
				if err != nil {
					b.Fatal(err)
				}
				cfg := core.DefaultConfig()
				cfg.MemoryPages = spec.Pages*2 + 16384
				if !drrip {
					cfg.Cache.L3.NewRepl = cache.NewLRU
				}
				cpi, err = exp.RunForkCPI(spec, cfg, exp.QuickForkParams(), true)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(cpi, "cpi")
		})
	}
}

func runOverlaySpMV(cfg core.Config, m *sparse.Matrix) (uint64, error) {
	f, err := core.New(cfg)
	if err != nil {
		return 0, err
	}
	proc := f.VM.NewProcess()
	o, layout, err := sparse.MapOverlay(f, proc, m)
	if err != nil {
		return 0, err
	}
	trace, err := sparse.OverlayTrace(o, layout)
	if err != nil {
		return 0, err
	}
	port := f.NewPort()
	c := cpu.New(f.Engine, port, proc.PID, trace)
	start := f.Engine.Now()
	done := false
	c.Run(0, func() { done = true })
	f.Engine.Run()
	if !done {
		return 0, fmt.Errorf("bench: SpMV never finished")
	}
	return uint64(f.Engine.Now() - start), nil
}
